package pipeline

import (
	"time"

	"repro/internal/cpa"
	"repro/internal/model"
)

// MonitorKind labels entries of the monitor plan.
type MonitorKind string

// Monitor kinds emitted by the MCC for the execution domain.
const (
	MonitorBudget MonitorKind = "budget" // execution time + deadline
	MonitorRate   MonitorKind = "rate"   // leaky-bucket event rate
)

// MonitorSpec is one monitor the MCC configures in the execution domain:
// "it can configure the monitoring facilities to enforce, e.g., the access
// policy to network resources or real-time behavior where necessary".
type MonitorSpec struct {
	Kind     MonitorKind
	Target   string // task or message name
	PeriodUS int64
	JitterUS int64
	WCETUS   int64
	Enforce  bool
}

// TimingResult carries the per-resource WCRT table of the timing
// acceptance test.
type TimingResult struct {
	Resource string
	Results  []cpa.Result
}

// StageTrace is the telemetry of one executed pipeline stage.
type StageTrace struct {
	// Stage names the stage.
	Stage StageName
	// Wall is the stage's wall-clock duration.
	Wall time.Duration
	// Note is an optional stage-specific telemetry line, e.g.
	// "warm-start: placed 1/41 instances" or "timing: 1/2 resources dirty".
	Note string
}

// Report is the outcome of one integration attempt.
type Report struct {
	// Accepted reports whether the new configuration was committed.
	Accepted bool
	// RejectedAt names the stage that failed (empty when accepted).
	RejectedAt StageName
	// Findings lists human-readable acceptance failures.
	Findings []string
	// Impl is the synthesized implementation model (nil if rejected
	// before synthesis).
	Impl *model.ImplementationModel
	// Timing is the WCRT table per resource.
	Timing []TimingResult
	// Monitors is the monitor plan for the execution domain.
	Monitors []MonitorSpec
	// Stages is the per-stage wall-clock/cache telemetry of every stage
	// that ran, in execution order. A rejected attempt that was retried
	// from scratch (warm-start fallback) accumulates the traces of both
	// passes.
	Stages []StageTrace
	// TimingScans counts the resources whose CPA task sets the timing
	// stage rebuilt by scanning the implementation model
	// (TasksOn/MessagesOn); with diff-proportional job construction the
	// task sets of untouched resources are spliced from the deployed
	// cache without any scan, so a clean-resource proposal reports 0.
	TimingScans int
	// TimingDirty counts the resources whose busy-window analysis
	// actually ran (or, under deferred timing, was scheduled); clean
	// resources reuse the committed WCRT tables.
	TimingDirty int
	// TimingResources is the total number of loaded resources the timing
	// stage covered.
	TimingResources int
	// SecurityChecks counts the per-connection security verdicts the
	// security stage actually computed; with the diff-scoped check only
	// connections whose client or server function the change touched (or
	// whose wiring is new) are re-verified, the rest splice their
	// committed-clean verdict, so the count tracks the change footprint
	// rather than the platform size. The from-scratch check counts every
	// session. Mirrors TimingScans for the security viewpoint.
	SecurityChecks int
	// SafetyChecks counts the per-entity safety verdicts (instance
	// placements, fail-operational redundancy groups, processor memory
	// budgets) the safety stage actually computed; the diff-scoped check
	// re-derives only touched functions' entities and affected
	// processors' budgets. Mirrors TimingScans for the safety viewpoint.
	SafetyChecks int
	// Passes counts the pipeline passes this report accumulated:
	// incremented by every Pipeline.Run, so 1 normally and 2 when a
	// rejected warm-start attempt was re-decided from scratch.
	Passes int
	// Degraded reports that this proposal did not complete on the
	// normal incremental path: its deadline expired, or a fault made
	// the MCC quarantine its incremental state and re-decide the
	// proposal on the pinned from-scratch path. A degraded verdict is
	// still deterministic — the degradation ladder guarantees it equals
	// the from-scratch oracle's decision (or is a deadline rejection).
	Degraded bool
	// DegradedReasons lists why the proposal degraded ("deadline",
	// "transient-fault", "quarantined"), in the order encountered.
	DegradedReasons []string
	// TransientFault marks a rejection caused by a fault the
	// degradation ladder classifies as transient (injected error,
	// recovered worker panic, cache corruption) rather than a real
	// acceptance failure; the MCC re-decides such proposals from
	// scratch before the verdict stands.
	TransientFault bool
	// PanicsRecovered counts panics recovered on behalf of this
	// proposal: pipeline stages and pooled timing/prefetch goroutines.
	PanicsRecovered int
	// RetriedAnalyses counts timing analyses retried after a transient
	// analyzer error (bounded retry with backoff).
	RetriedAnalyses int
}

// StageTraceFor returns the last recorded trace of the named stage, or nil.
func (r *Report) StageTraceFor(name StageName) *StageTrace {
	for i := len(r.Stages) - 1; i >= 0; i-- {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// StageWall sums the recorded wall-clock time per stage.
func (r *Report) StageWall() map[StageName]time.Duration {
	out := make(map[StageName]time.Duration, len(r.Stages))
	for _, tr := range r.Stages {
		out[tr.Stage] += tr.Wall
	}
	return out
}
