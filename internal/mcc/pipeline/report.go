package pipeline

import (
	"time"

	"repro/internal/cpa"
	"repro/internal/model"
)

// MonitorKind labels entries of the monitor plan.
type MonitorKind string

// Monitor kinds emitted by the MCC for the execution domain.
const (
	MonitorBudget MonitorKind = "budget" // execution time + deadline
	MonitorRate   MonitorKind = "rate"   // leaky-bucket event rate
)

// MonitorSpec is one monitor the MCC configures in the execution domain:
// "it can configure the monitoring facilities to enforce, e.g., the access
// policy to network resources or real-time behavior where necessary".
type MonitorSpec struct {
	Kind     MonitorKind
	Target   string // task or message name
	PeriodUS int64
	JitterUS int64
	WCETUS   int64
	Enforce  bool
}

// TimingResult carries the per-resource WCRT table of the timing
// acceptance test.
type TimingResult struct {
	Resource string
	Results  []cpa.Result
}

// StageTrace is the telemetry of one executed pipeline stage.
type StageTrace struct {
	// Stage names the stage.
	Stage StageName
	// Wall is the stage's wall-clock duration.
	Wall time.Duration
	// Note is an optional stage-specific telemetry line, e.g.
	// "warm-start: placed 1/41 instances" or "timing: 1/2 resources dirty".
	Note string
}

// Report is the outcome of one integration attempt.
type Report struct {
	// Accepted reports whether the new configuration was committed.
	Accepted bool
	// RejectedAt names the stage that failed (empty when accepted).
	RejectedAt StageName
	// Findings lists human-readable acceptance failures.
	Findings []string
	// Impl is the synthesized implementation model (nil if rejected
	// before synthesis). It is a read-only view shared with the
	// controller's committed state once the proposal is accepted; do not
	// mutate it. On the incremental path the flat Tasks and
	// Tech.Instances lists are unmaterialized (nil) — the change's
	// footprint lives in the controller's per-processor/per-function
	// tables — while Messages and Connections are always present;
	// whole-model readers use MCC.DeployedImpl(), which materializes the
	// committed lists on demand.
	Impl *model.ImplementationModel
	// TimingDelta holds the WCRT tables of exactly the resources this
	// attempt re-analyzed — the change's footprint, not the platform.
	// Every entry (including its Results slice) is freshly allocated and
	// owned by the report: mutating it cannot reach the controller's
	// committed caches. Untouched resources are not repeated here; use
	// FullTiming for the whole-platform view. On a from-scratch pass the
	// delta covers every analyzed resource, so delta == full table.
	TimingDelta []TimingResult
	// MonitorDelta holds the monitor specs of exactly the resources this
	// attempt rebuilt, freshly allocated and owned by the report. Use
	// FullMonitors for the whole plan. On a from-scratch pass the delta
	// is the complete plan.
	MonitorDelta []MonitorSpec
	// fullTiming/fullMonitors materialize the whole-platform tables from
	// the committed state this report's commit installed. They are bound
	// by the commit stage (BindCommitted) on accepted proposals and must
	// return freshly allocated data. Unexported so the handle never
	// serializes; the committed tables stay reachable only through the
	// materializing accessors.
	fullTiming   func() []TimingResult
	fullMonitors func() []MonitorSpec
	// Stages is the per-stage wall-clock/cache telemetry of every stage
	// that ran, in execution order. A rejected attempt that was retried
	// from scratch (warm-start fallback) accumulates the traces of both
	// passes.
	Stages []StageTrace
	// TimingScans counts the resources whose CPA task sets the timing
	// stage rebuilt by scanning the implementation model
	// (TasksOn/MessagesOn); with diff-proportional job construction the
	// task sets of untouched resources are spliced from the deployed
	// cache without any scan, so a clean-resource proposal reports 0.
	TimingScans int
	// TimingDirty counts the resources whose busy-window analysis
	// actually ran (or, under deferred timing, was scheduled); clean
	// resources reuse the committed WCRT tables.
	TimingDirty int
	// TimingResources is the total number of loaded resources the timing
	// stage covered.
	TimingResources int
	// SecurityChecks counts the per-connection security verdicts the
	// security stage actually computed; with the diff-scoped check only
	// connections whose client or server function the change touched (or
	// whose wiring is new) are re-verified, the rest splice their
	// committed-clean verdict, so the count tracks the change footprint
	// rather than the platform size. The from-scratch check counts every
	// session. Mirrors TimingScans for the security viewpoint.
	SecurityChecks int
	// SafetyChecks counts the per-entity safety verdicts (instance
	// placements, fail-operational redundancy groups, processor memory
	// budgets) the safety stage actually computed; the diff-scoped check
	// re-derives only touched functions' entities and affected
	// processors' budgets. Mirrors TimingScans for the safety viewpoint.
	SafetyChecks int
	// Passes counts the pipeline passes this report accumulated:
	// incremented by every Pipeline.Run, so 1 normally and 2 when a
	// rejected warm-start attempt was re-decided from scratch.
	Passes int
	// Degraded reports that this proposal did not complete on the
	// normal incremental path: its deadline expired, or a fault made
	// the MCC quarantine its incremental state and re-decide the
	// proposal on the pinned from-scratch path. A degraded verdict is
	// still deterministic — the degradation ladder guarantees it equals
	// the from-scratch oracle's decision (or is a deadline rejection).
	Degraded bool
	// DegradedReasons lists why the proposal degraded ("deadline",
	// "transient-fault", "quarantined"), in the order encountered.
	DegradedReasons []string
	// TransientFault marks a rejection caused by a fault the
	// degradation ladder classifies as transient (injected error,
	// recovered worker panic, cache corruption) rather than a real
	// acceptance failure; the MCC re-decides such proposals from
	// scratch before the verdict stands.
	TransientFault bool
	// PanicsRecovered counts panics recovered on behalf of this
	// proposal: pipeline stages and pooled timing/prefetch goroutines.
	PanicsRecovered int
	// RetriedAnalyses counts timing analyses retried after a transient
	// analyzer error (bounded retry with backoff).
	RetriedAnalyses int
}

// BindCommitted attaches the materialize-on-demand whole-table view to
// an accepted report. Both closures must return freshly allocated
// slices on every call (deep copies of the committed tables): the
// report contract promises that nothing a consumer obtains from a
// Report aliases controller state.
func (r *Report) BindCommitted(timing func() []TimingResult, monitors func() []MonitorSpec) {
	r.fullTiming = timing
	r.fullMonitors = monitors
}

// FullTiming materializes the whole-platform WCRT table as of this
// report's commit. Every call returns a fresh deep copy the caller
// owns. On reports that never committed (rejected attempts), no
// committed handle is bound and the materialized view is just a copy of
// TimingDelta — the tables the attempt actually computed.
func (r *Report) FullTiming() []TimingResult {
	if r.fullTiming != nil {
		return r.fullTiming()
	}
	return CloneTimingResults(r.TimingDelta)
}

// FullMonitors materializes the whole monitor plan as of this report's
// commit; same ownership and rejected-report semantics as FullTiming.
func (r *Report) FullMonitors() []MonitorSpec {
	if r.fullMonitors != nil {
		return r.fullMonitors()
	}
	out := make([]MonitorSpec, len(r.MonitorDelta))
	copy(out, r.MonitorDelta)
	return out
}

// CloneTimingResults deep-copies a WCRT table, including each entry's
// Results slice; cpa.Result itself is a flat value.
func CloneTimingResults(in []TimingResult) []TimingResult {
	if in == nil {
		return nil
	}
	out := make([]TimingResult, len(in))
	for i, tr := range in {
		out[i] = CloneTimingResult(tr)
	}
	return out
}

// CloneTimingResult deep-copies one per-resource WCRT table entry.
func CloneTimingResult(tr TimingResult) TimingResult {
	if tr.Results == nil {
		return TimingResult{Resource: tr.Resource}
	}
	rs := make([]cpa.Result, len(tr.Results))
	copy(rs, tr.Results)
	return TimingResult{Resource: tr.Resource, Results: rs}
}

// StageTraceFor returns the last recorded trace of the named stage, or nil.
func (r *Report) StageTraceFor(name StageName) *StageTrace {
	for i := len(r.Stages) - 1; i >= 0; i-- {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// StageWall sums the recorded wall-clock time per stage.
func (r *Report) StageWall() map[StageName]time.Duration {
	out := make(map[StageName]time.Duration, len(r.Stages))
	for _, tr := range r.Stages {
		out[tr.Stage] += tr.Wall
	}
	return out
}
