package mcc

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpa"
	"repro/internal/faultinject"
	"repro/internal/mcc/pipeline"
	"repro/internal/model"
	"repro/internal/safety"
	"repro/internal/security"
)

// This file implements the built-in pipeline stages of the MCC. Each stage
// holds a pointer back to the controller for its caches (deployed digests,
// WCRT tables, memoizing analyzer); the pure viewpoint checks (safety,
// security) are stateless. Stages work incrementally when the context says
// so and fall back to the from-scratch path otherwise — the from-scratch
// path is also the cold retry that re-decides rejected warm-start attempts.

// --- Stage 1: contract validation -----------------------------------------

type validateStage struct{ m *MCC }

func (s *validateStage) Name() Stage { return StageValidate }

func (s *validateStage) Run(ctx *pipeline.Context) error {
	if !ctx.Incremental || ctx.Diff.Full() {
		if err := ctx.Candidate.Validate(); err != nil {
			return pipeline.Rejectf("%s", err)
		}
		return nil
	}
	return s.runIncremental(ctx)
}

// runIncremental re-checks only what the diff can have invalidated: the
// contracts of changed functions and their flow neighborhoods, plus the
// global invariants (unique names, resolvable services) that a removal
// anywhere can break. The rule set itself lives in
// model.ValidateScoped — the same code path as the full validation — so
// the two can never drift apart.
func (s *validateStage) runIncremental(ctx *pipeline.Context) error {
	cand, d := ctx.Candidate, ctx.Diff
	if d.Empty() {
		ctx.Note("no-op: candidate identical to deployed")
		return nil
	}
	if done, err := s.fastVerdict(ctx); done {
		return err
	}
	nb := d.Neighborhood(cand)
	err := cand.ValidateScoped(
		// Contracts of untouched functions were validated when they were
		// committed; only the diff neighborhood needs a re-check.
		func(name string) bool { return nb[name] },
		// Likewise for flows: only flows touching changed functions (or a
		// changed flow set) can have become invalid.
		func(fl model.Flow) bool { return d.FlowsChanged || nb[fl.From] || nb[fl.To] },
	)
	if err != nil {
		return pipeline.Rejectf("%s", err)
	}
	ctx.Note("re-checked %d/%d function scopes", len(nb), len(cand.Functions))
	return nil
}

// fastVerdict decides the common single-change shapes without walking
// the candidate: a changed function with an unchanged service surface
// only needs its contract re-checked, an added function additionally its
// requires resolved against the committed provider counts, a removal of
// a provide-less function can invalidate nothing (its flows were cut
// with it). Anything it cannot prove clean — including every suspected
// violation — falls back to the scoped walk, which produces the exact
// finding the from-scratch path would.
func (s *validateStage) fastVerdict(ctx *pipeline.Context) (bool, error) {
	m, cand, d := s.m, ctx.Candidate, ctx.Diff
	if m.deployedSynth == nil || m.svcProviders == nil || d.TouchedCount() != 1 {
		return false, nil
	}
	if d.FlowsChanged && len(d.Removed) != 1 {
		return false, nil // arbitrary flow edits: walk the flow set
	}
	if len(d.Removed) == 1 {
		old := m.deployedSynth.fnByName[d.Removed[0]]
		if old == nil || len(old.Provides) > 0 {
			// A dropped provider may orphan committed requirers.
			return false, nil
		}
		ctx.Note("fast: removal provides no services, flows cut with it")
		return true, nil
	}
	var name string
	if len(d.Changed) == 1 {
		name = d.Changed[0]
	} else if len(d.Added) == 1 {
		name = d.Added[0]
	} else {
		return false, nil
	}
	neu := m.candFn(cand, name)
	if neu == nil || neu.Name == "" {
		return false, nil
	}
	if err := neu.Contract.Validate(); err != nil {
		// The scoped walk's first (and only possible) finding here is this
		// contract error: committed names are unique and non-empty, every
		// committed contract validated when it committed, and the walk
		// checks contracts before service resolution. Reject directly, in
		// the walk's exact wrapping, instead of paying its O(n) map build.
		return true, pipeline.Rejectf("model: function %q: %s", name, err)
	}
	old := m.deployedSynth.fnByName[name]
	if old != nil {
		// Changed: with Provides/Requires unchanged, the committed service
		// resolution and every committed flow check still hold verbatim.
		if !slices.Equal(old.Provides, neu.Provides) || !slices.Equal(old.Requires, neu.Requires) {
			return false, nil
		}
		ctx.Note("fast: contract re-checked, service surface unchanged")
		return true, nil
	}
	// Added: no committed flow can reference the new name (flow endpoints
	// must exist when they commit); only its requires need resolving.
	for _, svc := range neu.Requires {
		if m.svcProviders[svc] == 0 && !slices.Contains(neu.Provides, svc) {
			return false, nil
		}
	}
	ctx.Note("fast: added function's contract and required services verified")
	return true, nil
}

// --- Stage 2: mapping ------------------------------------------------------

type mappingStage struct{ m *MCC }

func (s *mappingStage) Name() Stage { return StageMapping }

func (s *mappingStage) Run(ctx *pipeline.Context) error {
	s.m.pendingLoads = nil
	s.m.pendingPlaced = nil
	if ctx.Incremental && !ctx.Diff.Full() && ctx.DeployedImpl != nil {
		if tech, kept, placed, ok := s.m.mapWarmStart(ctx); ok {
			ctx.Tech = tech
			ctx.WarmMapped = true
			ctx.Note("warm-start: kept %d instances, placed %d", kept, placed)
			return nil
		}
		ctx.Note("warm-start infeasible, fell back to full best-fit")
	}
	tech, err := s.m.mapToPlatform(ctx.Candidate)
	if err != nil {
		return pipeline.Rejectf("%s", err)
	}
	ctx.Tech = tech
	return nil
}

// placer tracks per-processor residual capacity during best-fit mapping.
// Both the full mapping and the warm-start share it, so the placement
// constraints (safety certification, utilization cap, RAM budget, replica
// separation) live in exactly one place. Loads are a plain slice indexed
// by platform processor position (via MCC.procIdx), so the best-fit scan
// and the accounting run without a map operation per processor.
type placer struct {
	m     *MCC
	loads []procLoad
}

type procLoad struct {
	utilPPM int64
	ramKiB  int64
}

// newPlacer returns a placer over the reusable scratch buffer, zeroed
// (cold start: loads accumulate from nothing).
func (m *MCC) newPlacer() *placer {
	s := m.placerScratch()
	clear(s)
	return &placer{m: m, loads: s}
}

// newPlacerFromCommitted returns a placer over the scratch buffer
// pre-filled with the committed per-processor loads.
func (m *MCC) newPlacerFromCommitted() *placer {
	s := m.placerScratch()
	copy(s, m.deployedLoads)
	return &placer{m: m, loads: s}
}

func (m *MCC) placerScratch() []procLoad {
	if len(m.loadScratch) != len(m.platform.Processors) {
		m.loadScratch = make([]procLoad, len(m.platform.Processors))
	}
	return m.loadScratch
}

// account charges one replica of f to the named processor.
func (p *placer) account(f *model.Function, proc string) bool {
	i, ok := p.m.procIdx[proc]
	if !ok {
		return false
	}
	pr := &p.m.platform.Processors[i]
	p.loads[i].utilPPM += scaleUtilPPM(utilPPM(f), pr.SpeedFactor)
	p.loads[i].ramKiB += f.Contract.Resources.RAMKiB
	return true
}

// discount removes one replica of f from the named processor — the exact
// inverse of account (integer arithmetic, so subtracting the committed
// charge restores the residual a re-accounting would produce).
func (p *placer) discount(f *model.Function, proc string) bool {
	i, ok := p.m.procIdx[proc]
	if !ok {
		return false
	}
	pr := &p.m.platform.Processors[i]
	p.loads[i].utilPPM -= scaleUtilPPM(utilPPM(f), pr.SpeedFactor)
	p.loads[i].ramKiB -= f.Contract.Resources.RAMKiB
	return true
}

// place assigns every replica of f best-fit (lowest resulting utilization)
// over the remaining capacity, honouring safety certification, the 100%
// utilization cap, RAM budgets, and replica separation. It reports
// ok=false when a replica has no feasible processor, returning the
// replicas placed so far (their index names the failing one).
func (p *placer) place(f *model.Function) ([]model.Instance, bool) {
	var out []model.Instance
	usedProcs := make(map[string]bool)
	for r := 0; r < f.EffectiveReplicas(); r++ {
		best := ""
		var bestUtil int64 = -1
		for i := range p.m.platform.Processors {
			proc := &p.m.platform.Processors[i]
			if proc.MaxSafety < f.Contract.Safety {
				continue
			}
			if f.EffectiveReplicas() > 1 && usedProcs[proc.Name] {
				continue // replica separation
			}
			l := &p.loads[i]
			scaledUtil := scaleUtilPPM(utilPPM(f), proc.SpeedFactor)
			if l.utilPPM+scaledUtil > 1_000_000 {
				continue
			}
			if l.ramKiB+f.Contract.Resources.RAMKiB > proc.RAMKiB {
				continue
			}
			// Best fit: lowest resulting utilization.
			if bestUtil < 0 || l.utilPPM+scaledUtil < bestUtil {
				best = proc.Name
				bestUtil = l.utilPPM + scaledUtil
			}
		}
		if best == "" {
			return out, false
		}
		p.account(f, best)
		usedProcs[best] = true
		out = append(out, model.Instance{Function: f.Name, Replica: r, Processor: best})
	}
	return out, true
}

// sortByConstraint orders functions for placement: hardest constraints
// first (safety desc, utilization desc, name).
func sortByConstraint(fns []*model.Function) {
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].Contract.Safety != fns[j].Contract.Safety {
			return fns[i].Contract.Safety > fns[j].Contract.Safety
		}
		ui, uj := utilPPM(fns[i]), utilPPM(fns[j])
		if ui != uj {
			return ui > uj
		}
		return fns[i].Name < fns[j].Name
	})
}

// mapWarmStart maps the candidate starting from the deployed placement:
// instances of untouched functions stay where they are, only the diff is
// placed (best-fit over the residual capacity). It reports ok=false when
// the diff cannot be placed on the residual capacity — the caller then
// falls back to the full best-fit over all functions, which reshuffles
// untouched instances too.
func (m *MCC) mapWarmStart(ctx *pipeline.Context) (tech *model.TechnicalArchitecture, kept, placed int, ok bool) {
	cand, d := ctx.Candidate, ctx.Diff
	depTech := ctx.DeployedImpl.Tech

	// With committed per-processor loads the kept instances need no
	// re-accounting at all: subtract the touched functions' committed
	// charges, place the diff over the residual, splice the instance
	// list. The residuals are integer-exact equal to a re-accounting, so
	// the feasibility verdict and best-fit choices are identical to the
	// legacy loop below.
	if m.deployedLoads != nil && m.deployedSynth != nil {
		return m.mapWarmFromCommitted(ctx)
	}
	if depTech.Instances == nil {
		// A keyed commit leaves the flat instance list unmaterialized and
		// always installs committed loads alongside, so this loop should
		// be unreachable with a lazy model; decide cold if it ever is.
		return nil, 0, 0, false
	}

	fnByName := make(map[string]*model.Function, len(cand.Functions))
	for i := range cand.Functions {
		fnByName[cand.Functions[i].Name] = &cand.Functions[i]
	}

	// Keep untouched instances in place and account their load.
	p := m.newPlacer()
	instances := make([]model.Instance, 0, len(depTech.Instances))
	for _, in := range depTech.Instances {
		if d.Touched(in.Function) {
			continue // re-placed below (changed) or dropped (removed)
		}
		f := fnByName[in.Function]
		if f == nil || !p.account(f, in.Processor) {
			return nil, 0, 0, false // stale placement; decide cold
		}
		instances = append(instances, in)
	}
	kept = len(instances)

	// Place the diff best-fit over the residual capacity, hardest
	// constraints first (same order as the full mapping).
	var todo []*model.Function
	for _, names := range [][]string{d.Added, d.Changed} {
		for _, name := range names {
			if f := fnByName[name]; f != nil {
				todo = append(todo, f)
			}
		}
	}
	sortByConstraint(todo)
	for _, f := range todo {
		ins, ok := p.place(f)
		if !ok {
			return nil, 0, 0, false // no room on residual capacity
		}
		instances = append(instances, ins...)
		placed += len(ins)
	}
	sort.Slice(instances, func(i, j int) bool { return instances[i].Less(instances[j]) })
	m.pendingLoads = p.loads
	// The warm-start placement is correct by construction (every kept
	// instance was validated at commit time, every new one against the
	// live constraints); the full structural re-validation is what the
	// incremental path exists to avoid.
	return &model.TechnicalArchitecture{Platform: m.platform, Func: cand, Instances: instances}, kept, placed, true
}

// mapWarmFromCommitted is the O(diff) warm start: the committed loads
// slice is copied (one memcpy), the touched functions' committed charges
// are subtracted, and the diff is placed best-fit over the residual. The
// candidate's flat instance list is never assembled — the fresh
// placements are handed to the synthesis overlay through pendingPlaced,
// everything downstream resolves instances through the committed tables
// plus that overlay, and DeployedImpl materializes the flat list on
// demand for whole-model readers. That removes the only remaining
// O(platform) step (the splice and its allocation) from the warm path.
func (m *MCC) mapWarmFromCommitted(ctx *pipeline.Context) (tech *model.TechnicalArchitecture, kept, placed int, ok bool) {
	cand, d := ctx.Candidate, ctx.Diff

	p := m.newPlacerFromCommitted()
	names := make([]string, 0, d.TouchedCount())
	names = append(names, d.Added...)
	names = append(names, d.Changed...)
	names = append(names, d.Removed...)
	cut := 0
	for _, name := range names {
		old := m.deployedSynth.fnByName[name]
		cut += len(m.deployedSynth.instancesOf[name])
		for _, in := range m.deployedSynth.instancesOf[name] {
			if old == nil || !p.discount(old, in.Processor) {
				return nil, 0, 0, false // stale committed state; decide cold
			}
		}
	}

	var todo []*model.Function
	for _, nameSet := range [][]string{d.Added, d.Changed} {
		for _, name := range nameSet {
			if f := m.candFn(cand, name); f != nil {
				todo = append(todo, f)
			}
		}
	}
	sortByConstraint(todo)
	placedBy := make(map[string][]model.Instance, len(todo))
	for _, f := range todo {
		ins, ok := p.place(f)
		if !ok {
			return nil, 0, 0, false // no room on residual capacity
		}
		if len(ins) > 0 {
			placedBy[f.Name] = ins
		}
		placed += len(ins)
	}

	kept = m.deployedInstTotal - cut
	m.pendingPlaced = placedBy
	m.pendingLoads = p.loads
	return &model.TechnicalArchitecture{Platform: m.platform, Func: cand}, kept, placed, true
}

// mapToPlatform assigns every function replica to a processor:
// greedy best-fit ordered by (safety desc, utilization desc), honouring
// safety certification, RAM budgets, and replica separation.
func (m *MCC) mapToPlatform(fa *model.FunctionalArchitecture) (*model.TechnicalArchitecture, error) {
	// Deterministic placement order: hardest constraints first.
	order := make([]*model.Function, len(fa.Functions))
	for i := range fa.Functions {
		order[i] = &fa.Functions[i]
	}
	sortByConstraint(order)

	p := m.newPlacer()
	var instances []model.Instance
	for _, f := range order {
		ins, ok := p.place(f)
		if !ok {
			return nil, fmt.Errorf("mcc: no feasible processor for %s#%d (safety %v, util %.1f%%, ram %d KiB)",
				f.Name, len(ins), f.Contract.Safety, float64(utilPPM(f))/10000, f.Contract.Resources.RAMKiB)
		}
		instances = append(instances, ins...)
	}
	sort.Slice(instances, func(i, j int) bool { return instances[i].Less(instances[j]) })
	tech := &model.TechnicalArchitecture{Platform: m.platform, Func: fa, Instances: instances}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	return tech, nil
}

// --- Stage 3: implementation synthesis ------------------------------------

type synthStage struct{ m *MCC }

func (s *synthStage) Name() Stage { return StageSynth }

func (s *synthStage) Run(ctx *pipeline.Context) error {
	var impl *model.ImplementationModel
	var err error
	s.m.pendingSynth = nil
	if ctx.Incremental && ctx.WarmMapped && ctx.DeployedImpl != nil && s.m.deployedSynth != nil {
		impl, err = s.m.synthesizeIncremental(ctx)
	} else {
		impl, err = s.m.synthesize(ctx.Tech)
	}
	if err != nil {
		return pipeline.Rejectf("%s", err)
	}
	ctx.Impl = impl
	ctx.Report.Impl = impl
	return nil
}

// synthLookups builds the function and instance lookup tables the
// synthesis helpers share.
func synthLookups(tech *model.TechnicalArchitecture) (map[string]*model.Function, map[string][]model.Instance) {
	fnByName := make(map[string]*model.Function, len(tech.Func.Functions))
	for i := range tech.Func.Functions {
		f := &tech.Func.Functions[i]
		fnByName[f.Name] = f
	}
	instancesOf := make(map[string][]model.Instance, len(tech.Func.Functions))
	for _, in := range tech.Instances {
		instancesOf[in.Function] = append(instancesOf[in.Function], in)
	}
	for _, ins := range instancesOf {
		sort.Slice(ins, func(i, j int) bool { return ins[i].Replica < ins[j].Replica })
	}
	return fnByName, instancesOf
}

// synthCache holds the committed synthesis lookup tables: function
// contracts by name, replica instances by function, and the
// per-processor task lists of the deployed implementation model. It is
// maintained on commit next to deployedJobs — rebuilt in full only by
// from-scratch commits, keyed invalidation of diff-touched entries
// otherwise — so incremental synthesis can splice untouched processors'
// task lists without re-deriving the tables per proposal. The cache owns
// its entries: function values are standalone copies, instance and task
// slices are immutable once stored.
type synthCache struct {
	fnByName    map[string]*model.Function
	instancesOf map[string][]model.Instance
	tasksOn     map[string][]model.Task
	// instOn groups the committed instances by hosting processor, so the
	// incremental task rebuild of an affected processor starts from the
	// committed residents instead of scanning every instance.
	instOn map[string][]model.Instance
}

// newSynthCache derives the full lookup tables of a committed
// implementation model (the from-scratch commit path).
func newSynthCache(impl *model.ImplementationModel) *synthCache {
	fnByName, instancesOf := synthLookups(impl.Tech)
	sc := &synthCache{
		fnByName:    make(map[string]*model.Function, len(fnByName)),
		instancesOf: instancesOf,
		tasksOn:     make(map[string][]model.Task),
		instOn:      make(map[string][]model.Instance),
	}
	for name, f := range fnByName {
		cp := *f
		sc.fnByName[name] = &cp
	}
	// impl.Tech.Instances is sorted by Instance.Less, so the grouped lists
	// keep the (Function, Replica) order InstancesOn produces.
	for _, in := range impl.Tech.Instances {
		sc.instOn[in.Processor] = append(sc.instOn[in.Processor], in)
	}
	// impl.Tasks is assembled processor by processor in priority order, so
	// the grouped lists keep the order synthesizeTasksOn produces.
	for _, t := range impl.Tasks {
		sc.tasksOn[t.Processor] = append(sc.tasksOn[t.Processor], t)
	}
	return sc
}

// synthOverlay is the diff-sized patch one incremental synthesis lays
// over the committed synthCache: an entry per diff-touched function (nil
// marks a removal), the touched functions' new replica placements, and
// the rebuilt task lists of affected processors. The commit stage applies
// it to the cache with keyed (journalable) writes.
type synthOverlay struct {
	fns     map[string]*model.Function
	insts   map[string][]model.Instance
	tasksOn map[string][]model.Task
	// instsOn holds the affected processors' candidate resident lists
	// (committed residents minus touched functions plus new placements),
	// applied to synthCache.instOn by the commit stage.
	instsOn map[string][]model.Instance
}

// synthView resolves the function/instance lookups of one synthesis run:
// either the full tables freshly derived from the candidate (from-scratch
// path, nil overlay) or the committed tables overlaid with the
// diff-touched entries — O(diff) map writes instead of rebuilding both
// tables from the technical architecture.
type synthView struct {
	cache *synthCache
	over  *synthOverlay
}

func (v *synthView) fn(name string) *model.Function {
	if v.over != nil {
		if f, ok := v.over.fns[name]; ok {
			return f // nil for removed functions
		}
	}
	if v.cache != nil {
		return v.cache.fnByName[name]
	}
	return nil
}

func (v *synthView) instances(name string) []model.Instance {
	if v.over != nil {
		if _, touched := v.over.fns[name]; touched {
			return v.over.insts[name]
		}
	}
	if v.cache != nil {
		return v.cache.instancesOf[name]
	}
	return nil
}

// synthOverlay builds the candidate's lookup view against the committed
// tables: the diff names its touched functions, whose candidate values
// and placements are collected directly (binary search over the sorted
// instance list), everything untouched resolves through the cache (whose
// entries are value-identical under the warm-started mapping). No lookup
// table is rebuilt and no candidate-sized scan runs — cost is
// O(diff · log n).
func (m *MCC) synthOverlay(ctx *pipeline.Context) (*synthView, *synthOverlay) {
	d := ctx.Diff
	over := &synthOverlay{
		fns:     make(map[string]*model.Function, d.TouchedCount()),
		insts:   make(map[string][]model.Instance, d.TouchedCount()),
		tasksOn: make(map[string][]model.Task),
		instsOn: make(map[string][]model.Instance),
	}
	for _, name := range d.Removed {
		over.fns[name] = nil
	}
	cand := ctx.Candidate
	for _, nameSet := range [][]string{d.Added, d.Changed} {
		for _, name := range nameSet {
			if f := cand.FunctionByName(name); f != nil {
				over.fns[f.Name] = f
			}
		}
	}
	// The O(diff) warm start hands the fresh placements over directly,
	// keyed by function and replica-ascending — the exact per-function
	// lists synthLookups would produce — so no flat candidate instance
	// list is needed at all. The binary-search fallback covers warm paths
	// that materialized ctx.Tech.Instances instead (the legacy warm start
	// after a from-scratch commit).
	if m.pendingPlaced != nil {
		for name, f := range over.fns {
			if f == nil {
				continue // removed: no candidate placements
			}
			if ins := m.pendingPlaced[name]; len(ins) > 0 {
				over.insts[name] = ins
			}
		}
		return &synthView{cache: m.deployedSynth, over: over}, over
	}
	// ctx.Tech.Instances is sorted by Instance.Less, so each touched
	// function's placements form one contiguous replica-ascending block —
	// exactly the list synthLookups produces.
	ins := ctx.Tech.Instances
	for name, f := range over.fns {
		if f == nil {
			continue // removed: no candidate placements
		}
		lo := sort.Search(len(ins), func(i int) bool { return ins[i].Function >= name })
		hi := lo
		for hi < len(ins) && ins[hi].Function == name {
			hi++
		}
		if hi > lo {
			over.insts[name] = ins[lo:hi:hi]
		}
	}
	return &synthView{cache: m.deployedSynth, over: over}, over
}

// synthesizeTasksOn derives the deadline-monotonic task set of one
// processor (WCET scaled by the processor speed) from its resident
// instance list. The list order is irrelevant: the deadline-monotonic
// sort's comparator is total (ties break on Instance.Less).
func (m *MCC) synthesizeTasksOn(look *synthView, pn string, insts []model.Instance) []model.Task {
	var p *model.Processor
	if i, ok := m.procIdx[pn]; ok {
		p = &m.platform.Processors[i]
	}
	type cand struct {
		inst model.Instance
		fn   *model.Function
	}
	var cands []cand
	for _, in := range insts {
		f := look.fn(in.Function)
		if f == nil || !f.Contract.RealTime.HasTiming() {
			continue
		}
		cands = append(cands, cand{in, f})
	}
	// Deadline-monotonic order.
	sort.Slice(cands, func(i, j int) bool {
		di := cands[i].fn.Contract.RealTime.EffectiveDeadlineUS()
		dj := cands[j].fn.Contract.RealTime.EffectiveDeadlineUS()
		if di != dj {
			return di < dj
		}
		return cands[i].inst.Less(cands[j].inst)
	})
	tasks := make([]model.Task, 0, len(cands))
	for i, c := range cands {
		rt := c.fn.Contract.RealTime
		tasks = append(tasks, model.Task{
			Name:       c.inst.ID(),
			Processor:  pn,
			Priority:   i + 1,
			PeriodUS:   rt.PeriodUS,
			JitterUS:   rt.JitterUS,
			WCETUS:     int64(float64(rt.WCETUS) / p.SpeedFactor),
			DeadlineUS: rt.EffectiveDeadlineUS(),
			Safety:     c.fn.Contract.Safety,
		})
	}
	return tasks
}

// synthesizeMessages derives the network messages: for every periodic flow
// whose replica pairs land on different processors, one message per
// distinct network crossed (deterministic order). A flow whose replica
// pairs cross several networks loads each of them — charging only one bus
// would leave the others' real load out of the timing acceptance test.
func (m *MCC) synthesizeMessages(tech *model.TechnicalArchitecture, look *synthView) ([]model.Message, error) {
	type msgCand struct {
		flow model.Flow
		nets []string // distinct crossed networks, sorted
	}
	var msgs []msgCand
	for _, fl := range tech.Func.Flows {
		if fl.PeriodUS <= 0 {
			continue // sporadic flows handled by rate monitors only
		}
		fromInsts := look.instances(fl.From)
		toInsts := look.instances(fl.To)
		netSet := make(map[string]bool)
		for _, fi := range fromInsts {
			for _, ti := range toInsts {
				if fi.Processor == ti.Processor {
					continue
				}
				n := m.platform.Connecting(fi.Processor, ti.Processor)
				if n == nil {
					return nil, fmt.Errorf("mcc: no network connects %s and %s for flow %s->%s",
						fi.Processor, ti.Processor, fl.From, fl.To)
				}
				netSet[n.Name] = true
			}
		}
		if len(netSet) == 0 {
			continue
		}
		nets := make([]string, 0, len(netSet))
		for nn := range netSet {
			nets = append(nets, nn)
		}
		sort.Strings(nets)
		msgs = append(msgs, msgCand{fl, nets})
	}
	// Deadline(=period)-monotonic message priorities per network.
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].flow.PeriodUS != msgs[j].flow.PeriodUS {
			return msgs[i].flow.PeriodUS < msgs[j].flow.PeriodUS
		}
		if msgs[i].flow.Service != msgs[j].flow.Service {
			return msgs[i].flow.Service < msgs[j].flow.Service
		}
		if msgs[i].flow.From != msgs[j].flow.From {
			return msgs[i].flow.From < msgs[j].flow.From
		}
		return msgs[i].flow.To < msgs[j].flow.To
	})
	var out []model.Message
	prioByNet := make(map[string]int)
	for _, mc := range msgs {
		for _, nn := range mc.nets {
			prioByNet[nn]++
			name := fmt.Sprintf("%s:%s->%s", mc.flow.Service, mc.flow.From, mc.flow.To)
			if len(mc.nets) > 1 {
				name += "@" + nn // disambiguate the per-network copies
			}
			out = append(out, model.Message{
				Name:       name,
				Network:    nn,
				Priority:   prioByNet[nn],
				Bytes:      mc.flow.MsgBytes,
				PeriodUS:   mc.flow.PeriodUS,
				DeadlineUS: mc.flow.PeriodUS,
			})
		}
	}
	return out, nil
}

// synthesizeConnections wires every requirer to the (first) provider.
func synthesizeConnections(tech *model.TechnicalArchitecture, look *synthView) ([]model.Connection, error) {
	providerOf := make(map[string]string) // service -> first provider name
	for i := range tech.Func.Functions {
		f := &tech.Func.Functions[i]
		for _, svc := range f.Provides {
			if cur, ok := providerOf[svc]; !ok || f.Name < cur {
				providerOf[svc] = f.Name
			}
		}
	}
	var out []model.Connection
	for _, in := range tech.Instances {
		client := look.fn(in.Function)
		if client == nil {
			continue
		}
		for _, svc := range client.Requires {
			provName, ok := providerOf[svc]
			if !ok {
				return nil, fmt.Errorf("mcc: unprovided service %q", svc)
			}
			prov := look.instances(provName)
			if len(prov) == 0 {
				return nil, fmt.Errorf("mcc: provider %q not deployed", provName)
			}
			server := look.fn(provName)
			out = append(out, model.Connection{
				Client:      in.ID(),
				Server:      prov[0].ID(),
				Service:     svc,
				CrossDomain: client.Contract.Domain != server.Contract.Domain,
			})
		}
	}
	return out, nil
}

// synthesize derives the full implementation model: per-processor tasks
// with deadline-monotonic priorities (WCET scaled by processor speed),
// inter-processor messages from flows, and sessions from service
// requirements.
func (m *MCC) synthesize(tech *model.TechnicalArchitecture) (*model.ImplementationModel, error) {
	impl := &model.ImplementationModel{Tech: tech}
	fnByName, instancesOf := synthLookups(tech)
	look := &synthView{cache: &synthCache{fnByName: fnByName, instancesOf: instancesOf}}

	for _, pn := range m.procs {
		impl.Tasks = append(impl.Tasks, m.synthesizeTasksOn(look, pn, tech.InstancesOn(pn))...)
	}
	msgs, err := m.synthesizeMessages(tech, look)
	if err != nil {
		return nil, err
	}
	impl.Messages = msgs
	conns, err := synthesizeConnections(tech, look)
	if err != nil {
		return nil, err
	}
	impl.Connections = conns

	if err := impl.Validate(); err != nil {
		return nil, err
	}
	return impl, nil
}

// synthesizeIncremental rebuilds only the parts of the implementation
// model the diff can have changed, against the cached deployed model:
// tasks of processors hosting a touched instance (old or new placement),
// messages only when the flow topology or a flow endpoint changed, and
// connections only when a touched function participates in the service
// graph. Everything else is copied from the deployed implementation.
// Callers guarantee the placement of untouched instances is unchanged
// (warm-started mapping), which is what makes the copies valid.
//
// Lookups resolve through the committed synthCache plus a diff-sized
// overlay — the tables are not re-derived, and untouched processors'
// task lists splice straight from the cache.
func (m *MCC) synthesizeIncremental(ctx *pipeline.Context) (*model.ImplementationModel, error) {
	tech, d := ctx.Tech, ctx.Diff
	dep := ctx.DeployedImpl
	impl := &model.ImplementationModel{Tech: tech}
	look, over := m.synthOverlay(ctx)

	// Processors affected by the diff: wherever a touched function's
	// instances were (committed lookup), or now are (overlay).
	affected := make(map[string]bool)
	for name := range over.fns {
		for _, in := range m.deployedSynth.instancesOf[name] {
			affected[in.Processor] = true
		}
		for _, in := range over.insts[name] {
			affected[in.Processor] = true
		}
	}

	// Rebuild the affected processors' task lists; the candidate's flat
	// task list stays unmaterialized (impl.Tasks is nil). The rebuilt
	// lists live in over.tasksOn, every untouched processor keeps its
	// committed list in the synth cache, and every consumer of the
	// incremental path reads one of the two (timing-job construction,
	// monitor delta, custom viewpoints via ctx.Tasks()); DeployedImpl
	// materializes the committed flat list on demand for whole-model
	// readers. Assembling — and allocating — the platform-sized splice
	// here was the single largest O(n) term of the accepted-change path.
	// The sorted iteration keeps the first-error selection of the
	// per-task validation deterministic.
	affectedList := make([]string, 0, len(affected))
	for pn := range affected {
		affectedList = append(affectedList, pn)
	}
	sort.Strings(affectedList)
	for _, pn := range affectedList {
		insts := m.residentInstances(pn, over)
		over.instsOn[pn] = insts
		rebuilt := m.synthesizeTasksOn(look, pn, insts)
		// Scoped validation of the rebuilt task set (the spliced ones
		// were validated at commit time), through the same Task
		// invariant the full impl.Validate enforces — without it, a
		// WCET that rounds to zero under speed scaling would sail
		// through here while the from-scratch path rejects it.
		for _, t := range rebuilt {
			if err := t.Validate(); err != nil {
				return nil, err
			}
		}
		over.tasksOn[pn] = rebuilt
	}
	reusedProcs := len(m.procs) - len(affectedList)
	ctx.TasksFn = func() []model.Task { return m.candTasks(over) }

	// Messages change only when the flow set changed or a flow endpoint
	// was touched (untouched endpoints keep their placement under the
	// warm-started mapping). With the flow set unchanged the candidate's
	// flows are the committed ones, so the committed flow-touch index
	// answers "is any touched function a flow endpoint" in O(diff).
	rebuildMsgs := d.FlowsChanged
	if !rebuildMsgs {
		if ft := m.deployedFlowTouch; ft != nil {
			// A touched flow endpoint forces a rebuild only if its
			// placement actually moved: messages derive from flows and
			// endpoint placements alone, and flows are unchanged here, so
			// a change that re-places every replica onto its committed
			// processor leaves every message identical.
			for name := range over.fns {
				if ft[name] && placementChanged(m.deployedSynth.instancesOf[name], over.insts[name]) {
					rebuildMsgs = true
					break
				}
			}
		} else {
			for _, fl := range ctx.Candidate.Flows {
				if d.Touched(fl.From) || d.Touched(fl.To) {
					rebuildMsgs = true
					break
				}
			}
		}
	}
	if rebuildMsgs {
		msgs, err := m.synthesizeMessages(tech, look)
		if err != nil {
			return nil, err
		}
		impl.Messages = msgs
		// A rebuild re-derives every message, but most networks' lists
		// come out identical — only networks carrying a touched flow's
		// messages (now or before) actually change. Mark those, so the
		// timing stage splices the cached jobs of the rest.
		ctx.AffectedNets = affectedNets(dep.Messages, msgs)
	} else {
		// The committed slice is immutable once built; alias it.
		impl.Messages = dep.Messages
	}

	// Connections change only when a touched function alters what it
	// provides or requires, its trust domain, or its replica count.
	// Everything else about a change — WCET, RAM, placement — is invisible
	// to the session graph: connection endpoints are function#replica IDs,
	// provider election reads only the Provides sets, and CrossDomain only
	// the two domains, so under an unchanged service surface the rebuilt
	// rows would come out exactly equal to the committed ones.
	rebuildConns := false
	for name := range over.fns {
		if connTouched(m.deployedSynth.fnByName[name], over.fns[name]) {
			rebuildConns = true
			break
		}
	}
	if rebuildConns {
		// The session rebuild walks every candidate instance (provider
		// election is global); materialize the flat list for it on this
		// rare path — the common accepted change never pays for it.
		if tech.Instances == nil {
			tech.Instances = m.candInstances(over)
		}
		conns, err := synthesizeConnections(tech, look)
		if err != nil {
			return nil, err
		}
		impl.Connections = conns
	} else {
		impl.Connections = dep.Connections
	}

	// Record what the partial synthesis actually rebuilt so later stages
	// (timing-job construction, monitor planning) can splice their own
	// cached artifacts for the untouched remainder, and hand the lookup
	// overlay to the commit stage for keyed cache invalidation.
	ctx.PartialSynth = true
	ctx.AffectedProcs = affected
	ctx.MessagesRebuilt = rebuildMsgs
	ctx.ConnectionsRebuilt = rebuildConns
	m.pendingSynth = over

	ctx.Note("reused %d/%d processors, messages %s, connections %s",
		reusedProcs, len(m.platform.Processors), reusedWord(!rebuildMsgs), reusedWord(!rebuildConns))
	return impl, nil
}

// residentInstances derives the candidate's instance list on one
// affected processor: the committed residents minus the touched
// functions' instances, plus the touched instances now placed there.
// Cost is the processor's population, not the platform's.
func (m *MCC) residentInstances(pn string, over *synthOverlay) []model.Instance {
	old := m.deployedSynth.instOn[pn]
	out := make([]model.Instance, 0, len(old)+2)
	for _, in := range old {
		if _, touched := over.fns[in.Function]; !touched {
			out = append(out, in)
		}
	}
	for name := range over.fns {
		for _, in := range over.insts[name] {
			if in.Processor == pn {
				out = append(out, in)
			}
		}
	}
	return out
}

// candTasks materializes the candidate's flat task list from the
// committed per-processor lists plus the overlay's rebuilt ones, in the
// m.procs assembly order of every synthesis path. Only consumers that
// genuinely need the whole flat list pay for it (ctx.Tasks()).
func (m *MCC) candTasks(over *synthOverlay) []model.Task {
	total := 0
	for _, pn := range m.procs {
		if tasks, ok := over.tasksOn[pn]; ok {
			total += len(tasks)
		} else {
			total += len(m.deployedSynth.tasksOn[pn])
		}
	}
	out := make([]model.Task, 0, total)
	for _, pn := range m.procs {
		if tasks, ok := over.tasksOn[pn]; ok {
			out = append(out, tasks...)
			continue
		}
		out = append(out, m.deployedSynth.tasksOn[pn]...)
	}
	return out
}

// candInstances materializes the candidate's flat sorted instance list
// from the committed per-function table plus the overlay's placements —
// needed only by the connection-rebuild path, whose provider election
// walks every instance. Untouched names come from the committed table,
// touched ones from the overlay; the two sets are disjoint, and each
// per-function list is replica-ascending, so concatenating over the
// sorted names reproduces Instance.Less order.
func (m *MCC) candInstances(over *synthOverlay) []model.Instance {
	sc := m.deployedSynth
	names := make([]string, 0, len(sc.instancesOf)+len(over.insts))
	total := 0
	for name, ins := range sc.instancesOf {
		if _, touched := over.fns[name]; touched {
			continue
		}
		names = append(names, name)
		total += len(ins)
	}
	for name, ins := range over.insts {
		names = append(names, name)
		total += len(ins)
	}
	sort.Strings(names)
	view := &synthView{cache: sc, over: over}
	out := make([]model.Instance, 0, total)
	for _, name := range names {
		out = append(out, view.instances(name)...)
	}
	return out
}

// placementChanged reports whether a touched function's replica
// placements differ from its committed ones (both lists are
// replica-ascending).
func placementChanged(old, neu []model.Instance) bool {
	if len(old) != len(neu) {
		return true
	}
	for i := range old {
		if old[i].Processor != neu[i].Processor || old[i].Replica != neu[i].Replica {
			return true
		}
	}
	return false
}

// connTouched reports whether a function change can alter the session
// graph: the Provides/Requires sets, the trust domain, or the replica
// count changed. Connection rows are placement-independent
// (function#replica endpoints), so anything else cannot affect them.
func connTouched(old, neu *model.Function) bool {
	switch {
	case old == nil && neu == nil:
		return false
	case old == nil:
		return len(neu.Provides) > 0 || len(neu.Requires) > 0
	case neu == nil:
		return len(old.Provides) > 0 || len(old.Requires) > 0
	default:
		if !slices.Equal(old.Provides, neu.Provides) || !slices.Equal(old.Requires, neu.Requires) {
			return true
		}
		if len(old.Provides) == 0 && len(old.Requires) == 0 {
			return false
		}
		return old.Contract.Domain != neu.Contract.Domain ||
			old.EffectiveReplicas() != neu.EffectiveReplicas()
	}
}

func reusedWord(reused bool) string {
	if reused {
		return "reused"
	}
	return "rebuilt"
}

// affectedNets compares the rebuilt message list against the deployed one
// network by network and returns the networks whose lists differ
// (including networks present on only one side). Both lists are emitted
// by synthesizeMessages in the same global order, so per-network
// sublists compare positionally.
func affectedNets(old, rebuilt []model.Message) map[string]bool {
	oldBy := make(map[string][]model.Message)
	for _, msg := range old {
		oldBy[msg.Network] = append(oldBy[msg.Network], msg)
	}
	newBy := make(map[string][]model.Message)
	for _, msg := range rebuilt {
		newBy[msg.Network] = append(newBy[msg.Network], msg)
	}
	out := make(map[string]bool)
	for n, l := range newBy {
		if !slices.Equal(oldBy[n], l) {
			out[n] = true
		}
	}
	for n := range oldBy {
		if _, ok := newBy[n]; !ok {
			out[n] = true
		}
	}
	return out
}

// --- Stage 4a: safety acceptance ------------------------------------------

// The safety and security stages are pure verdicts: they mutate nothing
// and decide on the mapping/synthesis artifacts alone. Under partial
// synthesis both run diff-scoped — only the entities the change can have
// altered are re-verified, everything else splices its committed-clean
// verdict (a configuration only commits after these stages accepted it,
// so the committed state carries no findings; the warm-started mapping
// keeps untouched placements, so unchanged inputs imply unchanged
// verdicts). The scoped verdict is therefore identical to the full check
// by construction, and cheap enough to run inline even when the stream
// scheduler asks for deferred checks — only the from-scratch fallback
// (cold passes, cold caches) is still deferred to the prefetch pool.

type safetyStage struct{ m *MCC }

func (s *safetyStage) Name() Stage { return StageSafety }

func (s *safetyStage) Run(ctx *pipeline.Context) error {
	if ctx.PartialSynth {
		// Entity-driven, not predicate-filtered scans: CheckScoped walks
		// every candidate instance and function even for a one-function
		// change, while the footprint here is a handful of names. The
		// touched functions resolve through the committed tables plus this
		// proposal's overlay (the same view the synthesis used), the
		// affected processors' candidate residents were just computed by
		// the partial synthesis (over.instsOn) — so nothing below reads
		// the unmaterialized flat lists, and the cost is O(diff).
		m, d := s.m, ctx.Diff
		touched := make([]string, 0, d.TouchedCount())
		touched = append(touched, d.Added...)
		touched = append(touched, d.Changed...)
		touched = append(touched, d.Removed...)
		sort.Strings(touched)
		affected := make([]string, 0, len(ctx.AffectedProcs))
		for pn := range ctx.AffectedProcs {
			affected = append(affected, pn)
		}
		sort.Strings(affected)
		over := m.pendingSynth
		view := &synthView{cache: m.deployedSynth, over: over}
		findings, checked := safety.CheckEntities(touched, affected,
			view.fn,
			func(pn string) *model.Processor {
				if i, ok := m.procIdx[pn]; ok {
					return &m.platform.Processors[i]
				}
				return nil
			},
			view.instances,
			func(pn string) []model.Instance { return over.instsOn[pn] })
		ctx.Report.SafetyChecks += checked
		ctx.Note("scoped: %d verdicts for %d touched functions, %d affected processors",
			checked, ctx.Diff.TouchedCount(), len(ctx.AffectedProcs))
		return rejectFindings(findingStrings(findings))
	}
	if ctx.DeferChecks {
		// Pure verdict over the immutable mapping artifact: record the
		// input; the stream scheduler runs the check on the pool and
		// replays the window if it fails.
		s.m.deferred().tech = ctx.Tech
		return nil
	}
	findings, checked := safety.CheckScoped(ctx.Tech, nil, nil)
	ctx.Report.SafetyChecks += checked
	return rejectFindings(findingStrings(findings))
}

// --- Stage 4b: security acceptance ----------------------------------------

type securityStage struct{ m *MCC }

func (s *securityStage) Name() Stage { return StageSecurity }

func (s *securityStage) Run(ctx *pipeline.Context) error {
	m := s.m
	if ctx.PartialSynth && m.deployedSecVerdicts != nil {
		var findings []security.Finding
		var checked int
		if !ctx.ConnectionsRebuilt && m.deployedConnIdx != nil {
			findings, checked = m.checkSecurityIndexed(ctx)
		} else {
			findings, checked = m.checkSecurityScoped(ctx)
		}
		ctx.Report.SecurityChecks += checked
		ctx.Note("scoped: re-checked %d/%d connections", checked, len(ctx.Impl.Connections))
		return rejectFindings(findingStrings(findings))
	}
	if ctx.DeferChecks {
		m.deferred().impl = ctx.Impl
		return nil
	}
	findings, checked := security.CheckDomainsScoped(ctx.Impl, nil, nil)
	ctx.Report.SecurityChecks += checked
	return rejectFindings(findingStrings(findings))
}

// checkSecurityScoped runs the cross-domain check diff-proportionally: a
// connection gets a fresh verdict only when the diff touched its client
// or server function, or when it has no committed verdict (new or
// rewired wiring after a connection rebuild); every other connection was
// committed clean with unchanged contracts and splices. Function
// resolution goes through the committed synthesis lookups plus this
// proposal's diff overlay — no per-proposal index rebuild.
func (m *MCC) checkSecurityScoped(ctx *pipeline.Context) ([]security.Finding, int) {
	d := ctx.Diff
	resolve := m.secResolver()
	dirty := func(c model.Connection) bool {
		if !m.deployedSecVerdicts[c] {
			return true // no committed verdict for this wiring
		}
		return d.Touched(security.FunctionName(c.Client)) || d.Touched(security.FunctionName(c.Server))
	}
	return security.CheckDomainsScoped(ctx.Impl, resolve, dirty)
}

// secResolver builds the instance-ID -> function resolution of the
// scoped security checks: committed synthesis lookups plus this
// proposal's diff overlay — no per-proposal index rebuild. It mirrors
// the full check's resolution exactly: the instance must exist before
// its function is looked up, so a connection referencing a dropped
// replica of a still-deployed function is skipped by both paths alike.
func (m *MCC) secResolver() security.FunctionResolver {
	view := &synthView{cache: m.deployedSynth, over: m.pendingSynth}
	return func(id string) *model.Function {
		name := security.FunctionName(id)
		for _, in := range view.instances(name) {
			if in.ID() == id {
				return view.fn(name)
			}
		}
		return nil
	}
}

// checkSecurityIndexed is checkSecurityScoped without the scan: with the
// session list unrebuilt it aliases the committed one, every row has a
// committed-clean verdict, so the dirty set is exactly "rows incident to
// a touched function" — which the committed connection-position index
// answers directly. Walking the touched names' position lists (merged
// ascending, deduplicated) visits the same rows in the same list order
// as the scan's dirty filter, at O(diff + dirty) instead of O(conns)
// string splits and map hashes per proposal.
func (m *MCC) checkSecurityIndexed(ctx *pipeline.Context) ([]security.Finding, int) {
	d := ctx.Diff
	var pos []int
	for _, names := range [][]string{d.Added, d.Changed, d.Removed} {
		for _, name := range names {
			pos = append(pos, m.deployedConnIdx[name]...)
		}
	}
	sort.Ints(pos)
	conns := ctx.Impl.Connections
	resolve := m.secResolver()
	var out []security.Finding
	checked := 0
	prev := -1
	for _, i := range pos {
		if i == prev {
			continue // client and server both touched: one verdict
		}
		prev = i
		if i < 0 || i >= len(conns) {
			// Index out of step with the committed list — should be
			// impossible, but a wrong verdict source is never acceptable:
			// fall back to the scan.
			return m.checkSecurityScoped(ctx)
		}
		checked++
		c := conns[i]
		if f, bad := security.ConnectionVerdict(resolve(c.Client), resolve(c.Server), c); bad {
			out = append(out, f)
		}
	}
	return out, checked
}

func findingStrings[T fmt.Stringer](findings []T) []string {
	out := make([]string, 0, len(findings))
	for _, f := range findings {
		out = append(out, f.String())
	}
	return out
}

// rejectFindings turns a non-empty findings list into a stage rejection.
func rejectFindings(findings []string) error {
	if len(findings) == 0 {
		return nil
	}
	return &pipeline.Reject{Findings: findings}
}

// --- Stage 4c: timing acceptance ------------------------------------------

type timingStage struct{ m *MCC }

func (s *timingStage) Name() Stage { return StageTiming }

func (s *timingStage) Run(ctx *pipeline.Context) error {
	out := s.m.analyzeTiming(ctx, ctx.Impl)
	ctx.Report.TimingDelta = out.delta
	ctx.TimingDigests = out.digests
	ctx.Report.TimingScans += out.scanned
	ctx.Report.TimingDirty += out.dirty
	ctx.Report.TimingResources += out.total
	ctx.Note("%d/%d resources dirty, %d scanned", out.dirty, out.total, out.scanned)
	if out.transient {
		ctx.Report.TransientFault = true
	}
	if len(out.findings) > 0 {
		return &pipeline.Reject{Findings: out.findings}
	}
	return nil
}

// timingJob is one resource's share of the timing acceptance test.
type timingJob struct {
	resource string
	spnp     bool
	tasks    []cpa.Task
	digest   uint64
}

// committedRes is one committed resource's timing artifacts — the CPA
// job and its WCRT table — stored in deterministic resource order in
// the chunked committed table (see MCC.deployedRes). res.Results == nil
// marks a table not yet known: an optimistically committed resource
// whose deferred analysis has not been verified; a splice of such an
// entry re-analyzes through the memo instead of reusing the table.
type committedRes struct {
	job timingJob
	res TimingResult
}

// timingOutcome aggregates the timing stage's results: the WCRT tables
// of exactly the resources this attempt re-analyzed (freshly allocated,
// report-owned — the delta contract), the digests to commit, the
// acceptance findings (deadline misses and analysis errors), and the
// scanned/dirty/total telemetry counts (how many resources had their
// task sets rebuilt by scanning the implementation model, and how many
// were re-analyzed).
type timingOutcome struct {
	delta    []TimingResult
	digests  map[string]uint64
	findings []string
	scanned  int
	dirty    int
	total    int
	// transient marks that at least one finding stems from a transient
	// fault (injected error, recovered worker panic, corrupt memo entry)
	// rather than a real timing verdict; the degradation ladder
	// re-decides such rejections from scratch.
	transient bool
}

// timingScratch holds the MCC-owned buffers the timing stage reuses
// across proposals so the per-proposal hot path stops allocating: the job
// list, the digest map, and the merge buffers of the worker pool. Task
// slices inside committed jobs are never recycled — once a job is built
// its task slice is immutable, so cached jobs and reports can alias it.
type timingScratch struct {
	jobs    []timingJob
	digests map[string]uint64
	results []TimingResult
	errs    []error
	dirty   []int
	// scannedIdx records the indices (into jobs) of the resources whose
	// task sets this proposal rebuilt by scanning; the keyed commit
	// touches exactly these entries.
	scannedIdx []int
	// spliceSrc, when the committed-table merge built the job list, is
	// parallel to jobs: the deployedRes table index an entry was copied
	// from, or -1 for a freshly scanned resource. Positional result reuse
	// and the keyed commit's list rebuild read it; the map-walk path
	// leaves it empty (length mismatch disables it).
	spliceSrc []int
	// affected is the sorted affected-processor scratch of the merge.
	affected []string
	// sparse marks that timingJobsSparse built the job list: jobs holds
	// ONLY the scanned resources, each a positional replacement of the
	// committed entry sparsePos records, and every untouched committed
	// entry is implicit — the job-list cost follows the change footprint
	// instead of the platform size. analyzeTiming and the keyed commit
	// read the flag; every other path leaves it false.
	sparse bool
	// sparsePos is parallel to jobs under sparse: the deployedRes index
	// each scanned job replaces.
	sparsePos []int
}

// buildProcJob derives one processor's CPA task set by scanning the
// implementation model. ok is false when the processor carries no load.
func (m *MCC) buildProcJob(impl *model.ImplementationModel, pn string) (timingJob, bool) {
	tasks := impl.TasksOn(pn)
	return m.buildProcJobFrom(pn, tasks)
}

// buildProcJobFrom derives one processor's CPA job from an
// already-ordered task list. The partial synthesis hands the rebuilt
// lists of affected processors here directly — they carry unique
// ascending priorities, so they are element-wise what TasksOn would
// extract and re-sort from the flat model, without the O(tasks) scan.
func (m *MCC) buildProcJobFrom(pn string, tasks []model.Task) (timingJob, bool) {
	if len(tasks) == 0 {
		return timingJob{}, false
	}
	ct := make([]cpa.Task, 0, len(tasks))
	for _, t := range tasks {
		ct = append(ct, cpa.Task{
			Name:       t.Name,
			Priority:   t.Priority,
			WCETUS:     t.WCETUS,
			Event:      cpa.EventModel{PeriodUS: t.PeriodUS, JitterUS: t.JitterUS},
			DeadlineUS: t.DeadlineUS,
		})
	}
	return timingJob{resource: pn, tasks: ct, digest: cpa.TaskSetDigest(ct)}, true
}

// buildNetJob derives one network's CPA message set by scanning the
// implementation model. ok is false when the network carries no load.
func (m *MCC) buildNetJob(impl *model.ImplementationModel, n *model.Network) (timingJob, bool) {
	msgs := impl.MessagesOn(n.Name)
	if len(msgs) == 0 {
		return timingJob{}, false
	}
	ct := make([]cpa.Task, 0, len(msgs))
	for _, msg := range msgs {
		// Worst-case stuffed CAN frame time in µs.
		wcBits := int64(47 + 8*msg.Bytes + (34+8*msg.Bytes-1)/4)
		wcetUS := wcBits * 1_000_000 / n.BitsPerSec
		if wcetUS < 1 {
			wcetUS = 1
		}
		ct = append(ct, cpa.Task{
			Name:       msg.Name,
			Priority:   msg.Priority,
			WCETUS:     wcetUS,
			Event:      cpa.EventModel{PeriodUS: msg.PeriodUS},
			DeadlineUS: msg.DeadlineUS,
		})
	}
	return timingJob{resource: n.Name, spnp: true, tasks: ct, digest: cpa.TaskSetDigest(ct)}, true
}

// timingJobs derives the per-resource CPA task sets of the implementation
// model in deterministic order: processors (sorted by name), then networks
// (platform order). Resources without load are skipped.
//
// When the context carries a partial-synthesis diff and the deployed job
// cache is warm, construction is diff-proportional: only resources the
// diff affected are scanned (TasksOn/MessagesOn) and re-digested, every
// other resource's job — task slice and digest — is spliced from the
// cache of the committed configuration without touching the
// implementation model at all. The splice is valid because the partial
// synthesis copied exactly those resources' tasks/messages verbatim from
// the deployed model. ctx may be nil (always a full scan).
func (m *MCC) timingJobs(ctx *pipeline.Context, impl *model.ImplementationModel) (jobs []timingJob, scanned int) {
	jobs = m.scratch.jobs[:0]
	m.scratch.scannedIdx = m.scratch.scannedIdx[:0]
	m.scratch.spliceSrc = m.scratch.spliceSrc[:0]
	m.scratch.sparse = false
	incremental := ctx != nil && ctx.PartialSynth && m.deployedJobs != nil

	if incremental && m.deployedRes != nil {
		if m.canCommitIncremental(ctx) {
			// Footprint-sized job list: scanned resources only, each a
			// positional replacement in the committed table. Falls back to
			// the full splice when the resource shape changed.
			if js, n, ok := m.timingJobsSparse(ctx, impl, jobs); ok {
				m.scratch.jobs = js
				return js, n
			}
			jobs = m.scratch.jobs[:0]
			m.scratch.scannedIdx = m.scratch.scannedIdx[:0]
		}
		jobs, scanned = m.timingJobsSpliced(ctx, impl, jobs)
		m.scratch.jobs = jobs
		return jobs, scanned
	}

	for _, pn := range m.procs {
		if incremental && !ctx.AffectedProcs[pn] {
			// Untouched processor: its task set is byte-identical to the
			// deployed one; splice the cached job, no scan.
			if j, ok := m.deployedJobs[pn]; ok {
				jobs = append(jobs, j)
			}
			continue
		}
		scanned++
		var j timingJob
		var ok bool
		if over := m.pendingSynth; incremental && over != nil {
			// The partial synthesis leaves impl.Tasks unmaterialized; the
			// affected processors' rebuilt lists live in the overlay.
			if tasks, have := over.tasksOn[pn]; have {
				j, ok = m.buildProcJobFrom(pn, tasks)
			} else {
				j, ok = m.buildProcJob(impl, pn)
			}
		} else {
			j, ok = m.buildProcJob(impl, pn)
		}
		if ok {
			m.scratch.scannedIdx = append(m.scratch.scannedIdx, len(jobs))
			jobs = append(jobs, j)
		}
	}

	for i := range m.platform.Networks {
		n := &m.platform.Networks[i]
		if incremental && netClean(ctx, n.Name) {
			// The message list was copied verbatim from the deployed
			// model, or rebuilt identical on this network.
			if j, ok := m.deployedJobs[n.Name]; ok {
				jobs = append(jobs, j)
			}
			continue
		}
		scanned++
		if j, ok := m.buildNetJob(impl, n); ok {
			m.scratch.scannedIdx = append(m.scratch.scannedIdx, len(jobs))
			jobs = append(jobs, j)
		}
	}
	m.scratch.jobs = jobs
	return jobs, scanned
}

// timingJobsSpliced builds the job list by merging the committed
// resource list against the sorted affected set. Both are ordered
// subsets of the resource iteration order (processors sorted by name,
// then networks in platform order), so the merge emits jobs in exactly
// the order the map walk would — but an untouched resource costs one
// string comparison and a positional copy instead of two map lookups,
// and its committed WCRT table is later reachable by index (spliceSrc)
// instead of two more. Affected resources are scanned exactly as the
// map walk scans them, including processors that newly gained load.
func (m *MCC) timingJobsSpliced(ctx *pipeline.Context, impl *model.ImplementationModel, jobs []timingJob) ([]timingJob, int) {
	sc := &m.scratch
	scanned := 0
	aff := sc.affected[:0]
	for pn, on := range ctx.AffectedProcs {
		if on {
			aff = append(aff, pn)
		}
	}
	sort.Strings(aff)
	sc.affected = aff

	t := m.deployedRes
	over := m.pendingSynth
	scanProc := func(pn string) {
		scanned++
		var j timingJob
		var ok bool
		if over != nil {
			// The partial synthesis rebuilt exactly the affected
			// processors' task lists; read them instead of scanning the
			// flat model.
			if tasks, have := over.tasksOn[pn]; have {
				j, ok = m.buildProcJobFrom(pn, tasks)
			} else {
				j, ok = m.buildProcJob(impl, pn)
			}
		} else {
			j, ok = m.buildProcJob(impl, pn)
		}
		if ok {
			sc.scannedIdx = append(sc.scannedIdx, len(jobs))
			jobs = append(jobs, j)
			sc.spliceSrc = append(sc.spliceSrc, -1)
		}
	}
	ai := 0
	for li := 0; li < t.procs; li++ {
		r := t.at(li).job.resource
		for ai < len(aff) && aff[ai] < r {
			scanProc(aff[ai])
			ai++
		}
		if ai < len(aff) && aff[ai] == r {
			scanProc(r)
			ai++
			continue
		}
		jobs = append(jobs, t.at(li).job)
		sc.spliceSrc = append(sc.spliceSrc, li)
	}
	for ; ai < len(aff); ai++ {
		scanProc(aff[ai])
	}

	li := t.procs
	for i := range m.platform.Networks {
		n := &m.platform.Networks[i]
		cur := -1
		if li < t.n && t.at(li).job.resource == n.Name {
			cur = li
			li++
		}
		if netClean(ctx, n.Name) {
			if cur >= 0 {
				jobs = append(jobs, t.at(cur).job)
				sc.spliceSrc = append(sc.spliceSrc, cur)
			}
			continue
		}
		scanned++
		if j, ok := m.buildNetJob(impl, n); ok {
			sc.scannedIdx = append(sc.scannedIdx, len(jobs))
			jobs = append(jobs, j)
			sc.spliceSrc = append(sc.spliceSrc, -1)
		}
	}
	return jobs, scanned
}

// timingJobsSparse builds the job list of an attempt whose affected
// resources all replace their committed table entries in place: only the
// scanned jobs are materialized (sparsePos records the committed index
// each one replaces), every untouched resource stays implicit in the
// committed table, and the job-construction cost follows the change
// footprint instead of the platform size. The committed order is
// preserved by construction — affected processors are visited sorted,
// networks in platform order, matching the table's layout — so findings,
// deltas and telemetry come out exactly as the full splice would emit
// them. Any shape change (a resource gaining its first load, losing its
// last, or absent from the table) returns ok=false and the caller runs
// the full splice.
func (m *MCC) timingJobsSparse(ctx *pipeline.Context, impl *model.ImplementationModel, jobs []timingJob) ([]timingJob, int, bool) {
	sc := &m.scratch
	t := m.deployedRes
	over := m.pendingSynth
	scanned := 0

	aff := sc.affected[:0]
	for pn, on := range ctx.AffectedProcs {
		if on {
			aff = append(aff, pn)
		}
	}
	sort.Strings(aff)
	sc.affected = aff

	pos := sc.sparsePos[:0]
	for _, pn := range aff {
		scanned++
		var j timingJob
		var ok bool
		if over != nil {
			if tasks, have := over.tasksOn[pn]; have {
				j, ok = m.buildProcJobFrom(pn, tasks)
			} else {
				j, ok = m.buildProcJob(impl, pn)
			}
		} else {
			j, ok = m.buildProcJob(impl, pn)
		}
		li := t.find(pn)
		if !ok {
			if li >= 0 {
				return nil, 0, false // lost its last load: shape change
			}
			continue // no load before or after: not in the table at all
		}
		if li < 0 || t.at(li).job.spnp {
			return nil, 0, false // gained its first load: shape change
		}
		sc.scannedIdx = append(sc.scannedIdx, len(jobs))
		jobs = append(jobs, j)
		pos = append(pos, li)
	}
	if ctx.MessagesRebuilt {
		for i := range m.platform.Networks {
			n := &m.platform.Networks[i]
			if netClean(ctx, n.Name) {
				continue
			}
			scanned++
			j, ok := m.buildNetJob(impl, n)
			li := t.find(n.Name)
			if !ok {
				if li >= 0 {
					return nil, 0, false
				}
				continue
			}
			if li < 0 || !t.at(li).job.spnp {
				return nil, 0, false
			}
			sc.scannedIdx = append(sc.scannedIdx, len(jobs))
			jobs = append(jobs, j)
			pos = append(pos, li)
		}
	}
	sc.sparsePos = pos
	sc.sparse = true
	return jobs, scanned, true
}

// netClean reports whether a network's message list is untouched by the
// attempt: no message rebuild at all, or a rebuild that left this
// network's list identical (ctx.AffectedNets).
func netClean(ctx *pipeline.Context, name string) bool {
	if !ctx.MessagesRebuilt {
		return true
	}
	return ctx.AffectedNets != nil && !ctx.AffectedNets[name]
}

// deferredChecks carries one optimistically committed proposal's deferred
// acceptance checks (mcc.StreamScheduler): the safety/security inputs and
// the dirty timing jobs — exactly the resources still needing a
// busy-window verdict, in deterministic resource order. Clean resources'
// tables live in the committed state and are not replicated here. The
// failed flags are written by the scheduler's prefetch pool and read
// after its barrier.
type deferredChecks struct {
	tech *model.TechnicalArchitecture
	impl *model.ImplementationModel

	jobs []timingJob

	safetyFailed   bool
	securityFailed bool
	// safetyChecked/securityChecked record how many per-entity verdicts
	// the deferred from-scratch checks computed (the telemetry the
	// verification pass adds to the report). Zero when the stage decided
	// inline via the diff-scoped check (tech/impl stay nil then).
	safetyChecked   int
	securityChecked int

	// tainted marks that a prefetch task for this proposal hit a fault
	// (injected error or recovered panic). The verification pass treats a
	// tainted record as failed, forcing the window's serial replay — the
	// memo table may hold partial or missing entries, so the optimistic
	// decision cannot be trusted.
	tainted atomic.Bool
}

// deferred returns the deferred-check record of the pipeline run in
// progress, creating it on first use. integrate resets it per pass.
func (m *MCC) deferred() *deferredChecks {
	if m.lastDeferred == nil {
		m.lastDeferred = &deferredChecks{}
	}
	return m.lastDeferred
}

// analyzeTiming runs CPA on every processor (SPP) and network (SPNP/CAN).
// With incremental integration, resources whose task-set digest matches the
// deployed configuration are clean and reuse the committed WCRT table;
// dirty resources are fanned out over the worker pool and the results are
// merged back in deterministic resource order. A resource whose analysis
// fails (e.g. utilization >= 1, where the busy window does not terminate)
// is surfaced as a finding naming the resource — never dropped silently.
//
// Under ctx.DeferChecks the dirty analyses are not run at all: the jobs
// are recorded on m.lastDeferred for the stream scheduler to batch onto
// the worker pool and re-validate, and no findings are raised.
func (m *MCC) analyzeTiming(ctx *pipeline.Context, impl *model.ImplementationModel) timingOutcome {
	jobs, scanned := m.timingJobs(ctx, impl)
	m.pendingJobs = jobs
	m.pendingResults = nil

	sc := &m.scratch
	out := timingOutcome{scanned: scanned, total: len(jobs)}
	if sc.sparse {
		// The job list holds only the scanned resources; the attempt
		// still covers every committed one (positional replacements keep
		// the table's shape).
		out.total = m.deployedRes.n
	}
	if ctx == nil || !m.canCommitIncremental(ctx) {
		// The from-scratch commit refills the digest cache wholesale and
		// needs the full map; a keyed commit reads the digests of scanned
		// resources straight from the jobs and never looks at it.
		if sc.digests == nil {
			sc.digests = make(map[string]uint64, len(jobs))
		} else {
			clear(sc.digests)
		}
		for _, j := range jobs {
			sc.digests[j.resource] = j.digest
		}
		out.digests = sc.digests
	}

	spliced := !sc.sparse && len(sc.spliceSrc) == len(jobs) && len(jobs) > 0
	clean := func(i int) (TimingResult, bool) {
		if !m.incTiming {
			return TimingResult{}, false
		}
		if spliced {
			if k := sc.spliceSrc[i]; k >= 0 {
				// A positionally spliced job is the committed job itself
				// (digest-equal by construction); its committed table is
				// one index away. A nil table marks a deferred analysis
				// whose verified result lives only in the map (the stream
				// scheduler backfills it there) — fall through to the map
				// probe for those rare entries.
				if tr := m.deployedRes.at(k).res; tr.Results != nil {
					return tr, true
				}
			}
		}
		j := jobs[i]
		if m.deployedDigest[j.resource] == j.digest {
			tr, ok := m.deployedTiming[j.resource]
			return tr, ok
		}
		return TimingResult{}, false
	}

	if ctx != nil && ctx.DeferChecks {
		// Record only the dirty jobs: clean resources keep their committed
		// tables (reachable through the report's committed handle), and
		// the delta stays empty until the verification pass fills it with
		// the deferred verdicts.
		dt := m.deferred()
		for i := range jobs {
			if _, ok := clean(i); ok {
				continue
			}
			dt.jobs = append(dt.jobs, jobs[i])
			out.dirty++
		}
		return out
	}

	results := grow(&sc.results, len(jobs))
	errs := grow(&sc.errs, len(jobs))
	dirty := sc.dirty[:0]
	for i := range jobs {
		if tr, ok := clean(i); ok {
			results[i] = tr
			continue
		}
		dirty = append(dirty, i)
	}
	sc.dirty = dirty

	// Fan dirty resources out over the worker pool. Spawn at most
	// len(dirty)-1 extra goroutines (the proposing goroutine works too)
	// and hand out indices via an atomic counter — no feeder, no channel
	// teardown. Proposals dirtying only one or two resources, the common
	// fleet case, stay entirely on the proposing goroutine: goroutine
	// startup would cost more than the analyses.
	workers := m.workers
	if workers > len(dirty) {
		workers = len(dirty)
	}
	// Every analysis is panic-isolated, the proposal deadline is checked
	// before each job (an expired proposal stops analyzing and rejects
	// with the context error as a finding), and stalls inside the
	// injector are bounded by the proposal's done channel.
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	runOne := func(i int) {
		if ctx != nil && ctx.Expired() {
			errs[i] = ctx.Ctx.Err()
			return
		}
		results[i], errs[i] = m.runTimingJobSafe(done, jobs[i])
	}
	if workers <= 1 || len(dirty) <= minParallelDirty {
		for _, i := range dirty {
			runOne(i)
		}
	} else {
		runParallel(len(dirty), workers, func(k int) {
			runOne(dirty[k])
		})
	}

	out.dirty = len(dirty)
	m.pendingResults = results
	for i := range jobs {
		if errs[i] != nil {
			if isTransientErr(errs[i]) {
				out.transient = true
			}
			out.findings = append(out.findings,
				fmt.Sprintf("timing: analysis of %s failed: %v", jobs[i].resource, errs[i]))
			continue
		}
		for _, r := range results[i].Results {
			if !r.Schedulable {
				out.findings = append(out.findings,
					fmt.Sprintf("timing: %s on %s misses deadline (WCRT %dus > %dus)",
						r.Name, jobs[i].resource, r.WCRTUS, r.DeadlineUS))
			}
		}
	}
	// Report-owned delta: fresh deep copies of exactly the re-analyzed
	// resources' tables, in job order (dirty is ascending). Clean
	// resources' tables stay behind the committed handle. On a
	// from-scratch pass every job is dirty, so delta == full table.
	if len(dirty) > 0 {
		out.delta = make([]TimingResult, 0, len(dirty))
		for _, i := range dirty {
			if errs[i] == nil {
				out.delta = append(out.delta, pipeline.CloneTimingResult(results[i]))
			}
		}
	}
	return out
}

// minParallelDirty is the dirty-resource count below which the timing
// stage analyzes inline: for one or two dirty resources the goroutine
// startup cost dominates the busy-window iterations.
const minParallelDirty = 2

// runParallel executes run(0..n-1) on at most `workers` goroutines (the
// calling goroutine included), handing out indices via an atomic counter
// — no feeder goroutine, no channel teardown. Callers clamp workers and
// decide their own inline fast path.
func runParallel(n, workers int, run func(k int)) {
	var next atomic.Int64
	work := func() {
		for {
			k := int(next.Add(1)) - 1
			if k >= n {
				return
			}
			run(k)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// grow resizes a scratch buffer to n zeroed entries, reusing capacity.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	s := (*buf)[:n]
	clear(s)
	*buf = s
	return s
}

// Transient-fault sentinels of the timing path. A rejection caused by
// one of these (or by faultinject.ErrInjected) is classified transient:
// the degradation ladder re-decides the proposal from scratch instead of
// letting a fault masquerade as a real acceptance failure.
var (
	// errCacheCorrupt marks a memoized analysis whose result table does
	// not match its task set — the memo entry is corrupt. Detection
	// resets the analyzer (dropping every suspect entry).
	errCacheCorrupt = errors.New("mcc: timing memo entry corrupt")
	// errWorkerPanic marks a pooled analysis goroutine that panicked and
	// was recovered.
	errWorkerPanic = errors.New("mcc: timing worker panicked")
)

// isTransientErr classifies an analysis error as a recoverable fault
// rather than a real timing verdict.
func isTransientErr(err error) bool {
	return errors.Is(err, faultinject.ErrInjected) ||
		errors.Is(err, errCacheCorrupt) ||
		errors.Is(err, errWorkerPanic)
}

// maxAnalysisAttempts bounds the retry loop around one resource's
// analysis: the first attempt plus up to two retries of injected
// transient errors, with linear backoff between attempts.
const maxAnalysisAttempts = 3

// analyzeJob runs one resource's busy-window analysis, firing the
// "timing.worker" injection hook first. The memoized analyzer is used
// only on the normal incremental path; pinned and quarantined passes
// bypass both the hook and the memo, so a degraded decision can depend
// neither on injected faults nor on suspect cache state.
func (m *MCC) analyzeJob(done <-chan struct{}, j timingJob) ([]cpa.Result, error) {
	pinned := m.pinned || m.quarantined
	if !pinned {
		if _, fired, err := m.inject.Fire(done, "timing.worker", j.resource); fired && err != nil {
			return nil, err
		}
	}
	useMemo := m.incTiming && !pinned
	switch {
	case useMemo && j.spnp:
		return m.analyzer.AnalyzeSPNP(j.tasks)
	case useMemo:
		return m.analyzer.AnalyzeSPP(j.tasks)
	case j.spnp:
		return cpa.AnalyzeSPNP(j.tasks)
	default:
		return cpa.AnalyzeSPP(j.tasks)
	}
}

// runTimingJob analyzes one resource, through the memoizing analyzer when
// incremental timing is on, or from scratch for the serial baseline.
// Transient injected errors are retried with linear backoff (bounded by
// maxAnalysisAttempts, counted in the retriedAnalyses telemetry), and
// the result table is sanity-checked against the task set — a mismatch
// means the memo entry is corrupt: the analyzer is reset and the error
// reported transient so the degradation ladder re-decides from scratch.
func (m *MCC) runTimingJob(done <-chan struct{}, j timingJob) (TimingResult, error) {
	var res []cpa.Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = m.analyzeJob(done, j)
		if err == nil || !errors.Is(err, faultinject.ErrInjected) || attempt+1 >= maxAnalysisAttempts {
			break
		}
		m.retriedAnalyses.Add(1)
		time.Sleep(time.Duration(attempt+1) * 50 * time.Microsecond)
	}
	if err != nil {
		return TimingResult{Resource: j.resource}, err
	}
	if len(res) != len(j.tasks) {
		// The busy-window analysis emits exactly one result per task; a
		// shorter table can only come from a damaged memo entry.
		m.analyzer.Reset()
		return TimingResult{Resource: j.resource},
			fmt.Errorf("%w: %s returned %d results for %d tasks", errCacheCorrupt, j.resource, len(res), len(j.tasks))
	}
	return TimingResult{Resource: j.resource, Results: res}, nil
}

// runTimingJobSafe is runTimingJob with panic isolation: a panicking
// pooled goroutine (injected or real) is recovered, counted, and
// surfaced as a transient errWorkerPanic instead of taking the
// controller down.
func (m *MCC) runTimingJobSafe(done <-chan struct{}, j timingJob) (res TimingResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.panicsRecovered.Add(1)
			res = TimingResult{Resource: j.resource}
			err = fmt.Errorf("%w: %v", errWorkerPanic, r)
		}
	}()
	return m.runTimingJob(done, j)
}

// --- Stage 5: monitor plan -------------------------------------------------

type monitorStage struct{ m *MCC }

func (s *monitorStage) Name() Stage { return StageMonitors }

func (s *monitorStage) Run(ctx *pipeline.Context) error {
	m := s.m
	if ctx.PartialSynth && m.deployedRes != nil {
		ctx.Report.MonitorDelta = m.monitorDelta(ctx)
	} else {
		ctx.Report.MonitorDelta = m.planMonitors(ctx.Impl)
	}
	return nil
}

// planMonitors derives the execution-domain monitor configuration from
// scratch. It is the reference the incremental splice is held to
// (TestMonitorSplice* assert parity).
func (m *MCC) planMonitors(impl *model.ImplementationModel) []MonitorSpec {
	var out []MonitorSpec
	for _, t := range impl.Tasks {
		out = append(out, MonitorSpec{
			Kind: MonitorBudget, Target: t.Name,
			PeriodUS: t.PeriodUS, JitterUS: t.JitterUS, WCETUS: t.WCETUS,
		})
	}
	for _, msg := range impl.Messages {
		out = append(out, MonitorSpec{
			Kind: MonitorRate, Target: msg.Name,
			PeriodUS: msg.PeriodUS, Enforce: true,
		})
	}
	sortMonitorSpecs(out)
	return out
}

// sortMonitorSpecs orders a monitor plan canonically (kind, then target).
func sortMonitorSpecs(specs []MonitorSpec) {
	sort.Slice(specs, func(i, j int) bool {
		return monitorSpecLess(specs[i], specs[j])
	})
}

func monitorSpecLess(a, b MonitorSpec) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Target < b.Target
}

// jobMonitorSpecs derives the monitor specs of one timing job: budget
// monitors for processor tasks, enforced rate monitors for network
// messages. The CPA task set carries exactly the contract parameters the
// monitors need, so the specs are identical to what planMonitors derives
// from the implementation model.
func jobMonitorSpecs(j timingJob) []MonitorSpec {
	out := make([]MonitorSpec, 0, len(j.tasks))
	for _, t := range j.tasks {
		if j.spnp {
			out = append(out, MonitorSpec{
				Kind: MonitorRate, Target: t.Name,
				PeriodUS: t.Event.PeriodUS, Enforce: true,
			})
		} else {
			out = append(out, MonitorSpec{
				Kind: MonitorBudget, Target: t.Name,
				PeriodUS: t.Event.PeriodUS, JitterUS: t.Event.JitterUS, WCETUS: t.WCETUS,
			})
		}
	}
	sortMonitorSpecs(out)
	return out
}

// monitorDelta derives the monitor specs of exactly the resources this
// attempt rebuilt: budget specs of the scanned processors' timing jobs,
// plus — when the message list was re-derived — the rate specs of every
// network job. The result is freshly allocated and report-owned. The
// committed plan is never materialized here: consumers reach it through
// the report's FullMonitors handle, which derives it on demand from the
// committed table (see resTable.materializeMonitors), so the monitor
// stage's cost follows the change footprint, not the platform size.
func (m *MCC) monitorDelta(ctx *pipeline.Context) []MonitorSpec {
	var out []MonitorSpec
	rebuilt := 0
	for _, i := range m.scratch.scannedIdx {
		if j := m.pendingJobs[i]; !j.spnp {
			out = append(out, jobMonitorSpecs(j)...)
			rebuilt++
		}
	}
	if ctx.MessagesRebuilt {
		for i := len(m.pendingJobs) - 1; i >= 0 && m.pendingJobs[i].spnp; i-- {
			out = append(out, jobMonitorSpecs(m.pendingJobs[i])...)
			rebuilt++
		}
		if m.scratch.sparse {
			// The sparse job list carries only the rebuilt networks; the
			// delta still covers every network when messages were
			// re-derived, so emit the clean ones' specs from their
			// committed jobs (the network suffix of the table).
			t := m.deployedRes
			for li := t.procs; li < t.n; li++ {
				if j := t.at(li).job; netClean(ctx, j.resource) {
					out = append(out, jobMonitorSpecs(j)...)
					rebuilt++
				}
			}
		}
	}
	sortMonitorSpecs(out)
	ctx.Note("monitor delta: %d resources rebuilt (%d specs)", rebuilt, len(out))
	return out
}

// --- Stage 6: commit -------------------------------------------------------

type commitStage struct{ m *MCC }

func (s *commitStage) Name() Stage { return StageCommit }

// canCommitIncremental reports whether the commit stage will apply this
// attempt as keyed updates against the warm deployed caches (partial
// synthesis ran and every cache exists) instead of a full refill. The
// timing stage uses the same predicate to skip building the full digest
// map a keyed commit never reads.
func (m *MCC) canCommitIncremental(ctx *pipeline.Context) bool {
	return ctx.PartialSynth && m.deployedJobs != nil && m.deployedSynth != nil && m.pendingSynth != nil
}

// Run commits the accepted configuration. Under partial synthesis the
// deployed caches are updated with keyed writes touching only the
// resources the diff affected (journaled when a stream window is open —
// see cacheJournal); a from-scratch attempt rebuilds the caches
// wholesale. The cached values (task slices, result slices, spec slices)
// are immutable once built, so reports and rollback points may alias
// them.
func (s *commitStage) Run(ctx *pipeline.Context) error {
	m := s.m
	if m.deployed != ctx.Candidate {
		// A clone-based candidate replaces the deployed slice wholesale;
		// the committed function index no longer describes it.
		m.fnIdx = nil
	}
	m.deployed = ctx.Candidate
	m.impl = ctx.Impl
	if m.canCommitIncremental(ctx) {
		s.commitIncremental(ctx)
	} else {
		s.commitFull(ctx)
	}
	m.bindReport(ctx.Report)
	return nil
}

// bindReport attaches the just-committed table to the accepted report's
// materialize-on-demand whole-table handle (Report.FullTiming /
// FullMonitors). The table pointer is captured by value: later commits
// install new tables without disturbing this snapshot, and the chunked
// copy-on-write patching keeps the shared storage alive at O(diff) cost
// per commit. The window heal map is captured alongside for reports
// committed inside an open stream window, whose deferred analyses are
// verified — and their tables learned — only after the commit.
func (m *MCC) bindReport(rep *Report) {
	t, heals := m.deployedRes, m.windowHeals
	if t == nil {
		return
	}
	rep.BindCommitted(
		func() []TimingResult { return t.materializeTiming(heals) },
		func() []MonitorSpec { return t.materializeMonitors() },
	)
}

// commitFull rebuilds every deployed cache from this attempt's artifacts.
// Fresh maps are swapped in wholesale: an open window journal keeps the
// window-start maps (with their keyed undo entries) intact and detaches,
// so rollback simply re-installs them.
func (s *commitStage) commitFull(ctx *pipeline.Context) {
	m := s.m
	if m.journal != nil {
		m.journal.detached = true
	}
	// A wholesale rebuild replaces every incremental cache with values
	// derived from this attempt's artifacts, so any quarantine imposed by
	// the degradation ladder is lifted: the suspect state is gone.
	m.quarantined = false
	// Every committed placement may have moved: the shard routing index
	// is rebuilt lazily from the fresh synthesis cache.
	m.invalidateRoutes()

	// Per-resource WCRT tables of the new committed configuration, read
	// before the old maps are replaced: a non-deferred attempt analyzed
	// (or spliced) every job, so pendingResults is complete; a deferred
	// attempt has no results yet — only digest-clean resources keep their
	// tables, probed from the old committed maps.
	timing := make(map[string]TimingResult, len(m.pendingJobs))
	for i, jb := range m.pendingJobs {
		switch {
		case m.pendingResults != nil:
			timing[jb.resource] = m.pendingResults[i]
		case m.deployedDigest[jb.resource] == jb.digest:
			if tr, ok := m.deployedTiming[jb.resource]; ok {
				timing[jb.resource] = tr
			}
		}
	}

	digests := make(map[string]uint64, len(ctx.TimingDigests))
	for k, v := range ctx.TimingDigests {
		digests[k] = v
	}
	m.deployedDigest = digests
	m.deployedTiming = timing

	// Persist the per-resource CPA task sets so the next proposal's
	// timing-job construction can splice clean resources without a scan.
	jobs := make(map[string]timingJob, len(m.pendingJobs))
	for _, j := range m.pendingJobs {
		jobs[j.resource] = j
	}
	m.deployedJobs = jobs

	// Chunked committed-resource table: the job list is already in
	// deterministic resource order (processor prefix, then networks), and
	// the timing map just built holds whatever tables are known (all of
	// them on a verified commit, clean ones only under deferred checks).
	list := make([]committedRes, len(m.pendingJobs))
	procCount := 0
	for i, jb := range m.pendingJobs {
		if !jb.spnp {
			procCount++
		}
		list[i] = committedRes{job: jb, res: timing[jb.resource]}
	}
	m.deployedRes = resTableFrom(list, procCount)

	// Rebuild the synthesis lookup tables and the per-connection security
	// verdict cache only when the incremental pre-timing stages (their
	// sole consumers) are enabled.
	if m.incPre && ctx.Impl != nil {
		m.deployedSynth = newSynthCache(ctx.Impl)
		sec := make(map[model.Connection]bool, len(ctx.Impl.Connections))
		for _, c := range ctx.Impl.Connections {
			sec[c] = true
		}
		m.deployedSecVerdicts = sec
		m.deployedConnIdx = connPosIndex(ctx.Impl.Connections)
		m.deployedInstTotal = len(ctx.Impl.Tech.Instances)
		m.deployedFlowTouch = flowTouchIndex(ctx.Candidate.Flows)
		m.deployedLoads = committedLoads(m, ctx.Impl.Tech.Instances)
		prov := make(map[string]int)
		for i := range ctx.Candidate.Functions {
			for _, svc := range ctx.Candidate.Functions[i].Provides {
				prov[svc]++
			}
		}
		m.svcProviders = prov
	}
}

// committedLoads derives the per-processor load accounting of a committed
// placement — a fresh slice, so an open window journal rolls back by
// restoring the window-start pointer.
func committedLoads(m *MCC, instances []model.Instance) []procLoad {
	loads := make([]procLoad, len(m.platform.Processors))
	for _, in := range instances {
		i, ok := m.procIdx[in.Processor]
		f := m.deployedSynth.fnByName[in.Function]
		if !ok || f == nil {
			continue
		}
		loads[i].utilPPM += scaleUtilPPM(utilPPM(f), m.platform.Processors[i].SpeedFactor)
		loads[i].ramKiB += f.Contract.Resources.RAMKiB
	}
	return loads
}

// connPosIndex maps each function name to the ascending positions of the
// committed connections it is incident to (client or server side) — the
// committed index behind the indexed scoped security check. Always built
// fresh, never mutated in place, so a window journal rolls it back by
// restoring the window-start pointer.
func connPosIndex(conns []model.Connection) map[string][]int {
	out := make(map[string][]int)
	for i, c := range conns {
		cl := security.FunctionName(c.Client)
		sv := security.FunctionName(c.Server)
		out[cl] = append(out[cl], i)
		if sv != cl {
			out[sv] = append(out[sv], i)
		}
	}
	return out
}

// flowTouchIndex maps every function name a flow references to true —
// the committed index behind DiffFromChange's removal arm.
func flowTouchIndex(flows []model.Flow) map[string]bool {
	out := make(map[string]bool, 2*len(flows))
	for _, fl := range flows {
		out[fl.From] = true
		out[fl.To] = true
	}
	return out
}

// commitIncremental updates the deployed caches with keyed writes: only
// the resources this attempt scanned (affected processors, plus every
// network when messages were re-derived) and the diff-touched lookup
// entries are written or deleted, everything else keeps its committed
// entry by the splice invariant. Every write goes through the window
// journal when one is open.
func (s *commitStage) commitIncremental(ctx *pipeline.Context) {
	m, j := s.m, s.m.journal

	// The committed flow index changes only with the flow set (removals
	// cutting flows). Commits swap in a fresh map — never an in-place
	// write — so a window journal rolls back by pointer.
	if ctx.Diff.FlowsChanged {
		m.deployedFlowTouch = flowTouchIndex(ctx.Candidate.Flows)
	}

	// The warm-started mapping's placer buffer already holds the final
	// per-processor totals of the accepted placement; take ownership of it
	// as the new committed loads. The previous slice is recycled as the
	// next proposal's placer buffer — unless a window journal holds it as
	// its rollback pointer, in which case it must stay intact.
	if m.pendingLoads != nil {
		old := m.deployedLoads
		m.deployedLoads, m.pendingLoads = m.pendingLoads, nil
		m.loadScratch = nil
		if j == nil || len(old) == 0 || len(j.loads) == 0 || &old[0] != &j.loads[0] {
			m.loadScratch = old
		}
	}

	// Index this attempt's freshly scanned jobs by resource.
	fresh := make(map[string]int, len(m.scratch.scannedIdx))
	for _, i := range m.scratch.scannedIdx {
		fresh[m.pendingJobs[i].resource] = i
	}
	commitResource := func(r string) {
		i, ok := fresh[r]
		if !ok {
			// Affected resource that no longer carries load.
			jdel(j.jJobs(), m.deployedJobs, r)
			jdel(j.jDigests(), m.deployedDigest, r)
			jdel(j.jTiming(), m.deployedTiming, r)
			return
		}
		job := m.pendingJobs[i]
		oldDigest, had := m.deployedDigest[r]
		jset(j.jJobs(), m.deployedJobs, r, job)
		jset(j.jDigests(), m.deployedDigest, r, job.digest)
		switch {
		case m.pendingResults != nil:
			jset(j.jTiming(), m.deployedTiming, r, m.pendingResults[i])
		case !had || oldDigest != job.digest:
			// Deferred checks: the dirty analysis has not run yet; drop
			// the stale table (the stream scheduler's verification
			// backfills it on success, the window replays on failure).
			jdel(j.jTiming(), m.deployedTiming, r)
		}
	}
	for pn := range ctx.AffectedProcs {
		commitResource(pn)
	}
	if ctx.MessagesRebuilt {
		for i := range m.platform.Networks {
			if name := m.platform.Networks[i].Name; !netClean(ctx, name) {
				commitResource(name)
			}
		}
	}

	// Committed-resource table: this attempt's job list is the new
	// committed resource order. When the splice left the shape unchanged
	// (same length, every spliced entry in place, every scanned position
	// replacing the same resource), the table is patched copy-on-write —
	// spine plus affected chunks, O(diff) — leaving the previous table (a
	// window rollback point, a bound report snapshot) intact and shared.
	// A shape change (resources gaining or losing load) or a map-walk job
	// list rebuilds the table wholesale, O(n) but rare in steady state.
	// Either way an accepted commit always leaves a non-nil table, so
	// report binding and DeployedMonitors stay universally valid. Scanned
	// entries take this attempt's fresh table (or none yet under deferred
	// checks — the map probe finds the committed table of a digest-clean
	// rescan and misses for a dirty one, whose table the stream
	// scheduler's verification patches in on success).
	t := m.deployedRes
	if m.scratch.sparse {
		// Sparse job list: every entry is a positional replacement of the
		// committed index sparsePos records; patch copy-on-write exactly
		// like the aligned splice, without ever materializing the full
		// list. (The wholesale-rebuild branch below must not run here —
		// it would take the footprint-sized job list for the platform.)
		updates := make([]resUpdate, 0, len(m.scratch.scannedIdx))
		for k, i := range m.scratch.scannedIdx {
			jb := m.pendingJobs[i]
			cr := committedRes{job: jb}
			switch {
			case m.pendingResults != nil:
				cr.res = m.pendingResults[i]
			default:
				if tr, ok := m.deployedTiming[jb.resource]; ok && m.deployedDigest[jb.resource] == jb.digest {
					cr.res = tr
				}
			}
			updates = append(updates, resUpdate{m.scratch.sparsePos[k], cr})
		}
		m.deployedRes = t.patch(updates)
	}
	aligned := !m.scratch.sparse && t != nil && t.n == len(m.pendingJobs) && len(m.scratch.spliceSrc) == len(m.pendingJobs)
	if aligned {
		for i, src := range m.scratch.spliceSrc {
			if src == i {
				continue
			}
			if src != -1 || t.at(i).job.resource != m.pendingJobs[i].resource || t.at(i).job.spnp != m.pendingJobs[i].spnp {
				aligned = false
				break
			}
		}
	}
	if aligned {
		updates := make([]resUpdate, 0, len(m.scratch.scannedIdx))
		for _, i := range m.scratch.scannedIdx {
			jb := m.pendingJobs[i]
			cr := committedRes{job: jb}
			switch {
			case m.pendingResults != nil:
				cr.res = m.pendingResults[i]
			default:
				if tr, ok := m.deployedTiming[jb.resource]; ok && m.deployedDigest[jb.resource] == jb.digest {
					cr.res = tr
				}
			}
			updates = append(updates, resUpdate{i, cr})
		}
		m.deployedRes = t.patch(updates)
	} else if !m.scratch.sparse {
		list := make([]committedRes, len(m.pendingJobs))
		procCount := 0
		for i, jb := range m.pendingJobs {
			if !jb.spnp {
				procCount++
			}
			cr := committedRes{job: jb}
			switch {
			case len(m.scratch.spliceSrc) == len(m.pendingJobs) && m.scratch.spliceSrc[i] >= 0:
				cr.res = t.at(m.scratch.spliceSrc[i]).res
				if cr.res.Results == nil {
					// Deferred-committed entry: heal from the map, which
					// the verification pass backfilled (zero if still
					// unverified).
					cr.res = m.deployedTiming[jb.resource]
				}
			case m.pendingResults != nil:
				cr.res = m.pendingResults[i]
			default:
				if tr, ok := m.deployedTiming[jb.resource]; ok && m.deployedDigest[jb.resource] == jb.digest {
					cr.res = tr
				}
			}
			list[i] = cr
		}
		m.deployedRes = resTableFrom(list, procCount)
	}

	// Security verdict cache: the connection set changes only when the
	// synthesis rebuilt the sessions; every connection of the accepted
	// implementation model was verified clean (fresh-checked this
	// proposal or spliced from an earlier commit), so the cache becomes
	// exactly the new connection set — stale wiring dropped, new wiring
	// added, untouched entries left alone.
	if ctx.ConnectionsRebuilt && m.deployedSecVerdicts != nil {
		next := make(map[model.Connection]bool, len(ctx.Impl.Connections))
		for _, c := range ctx.Impl.Connections {
			next[c] = true
		}
		for c := range m.deployedSecVerdicts {
			if !next[c] {
				jdel(j.jSec(), m.deployedSecVerdicts, c)
			}
		}
		for c := range next {
			if !m.deployedSecVerdicts[c] {
				jset(j.jSec(), m.deployedSecVerdicts, c, true)
			}
		}
		// The position index describes the committed list; a rebuilt list
		// gets a fresh index (rollback restores the window-start pointer).
		if m.deployedConnIdx != nil {
			m.deployedConnIdx = connPosIndex(ctx.Impl.Connections)
		}
	}

	// Apply the synthesis lookup overlay: diff-touched functions are
	// copied in (or dropped), affected processors' task lists replaced.
	// The provider counts adjust by the same delta — decrement the
	// committed occurrences (read before the overlay overwrites them),
	// increment the candidate's.
	sc, over := m.deployedSynth, m.pendingSynth
	// Committed instance count: touched functions' committed replicas
	// out, fresh placements in — read before the overlay overwrites the
	// committed entries. Rollback restores the window-start value saved
	// by beginWindow.
	for name := range over.fns {
		m.deployedInstTotal += len(over.insts[name]) - len(sc.instancesOf[name])
		// Refresh the shard routing of the diff-touched functions: the
		// keyed commit is what moves placements, so dropping exactly these
		// entries keeps the routing index in step at O(diff) (the next
		// lookup re-resolves from the placements committed below).
		delete(m.fnParts, name)
	}
	for name, f := range over.fns {
		if old := sc.fnByName[name]; old != nil && m.svcProviders != nil {
			for _, svc := range old.Provides {
				if n := m.svcProviders[svc] - 1; n > 0 {
					jset(j.jSvcProv(), m.svcProviders, svc, n)
				} else {
					jdel(j.jSvcProv(), m.svcProviders, svc)
				}
			}
		}
		if f != nil && m.svcProviders != nil {
			for _, svc := range f.Provides {
				jset(j.jSvcProv(), m.svcProviders, svc, m.svcProviders[svc]+1)
			}
		}
		if f == nil {
			jdel(j.jSynFns(), sc.fnByName, name)
			jdel(j.jSynIns(), sc.instancesOf, name)
			continue
		}
		cp := *f
		jset(j.jSynFns(), sc.fnByName, name, &cp)
		jset(j.jSynIns(), sc.instancesOf, name, over.insts[name])
	}
	for pn, tasks := range over.tasksOn {
		if len(tasks) == 0 {
			jdel(j.jSynTasks(), sc.tasksOn, pn)
		} else {
			jset(j.jSynTasks(), sc.tasksOn, pn, tasks)
		}
	}
	for pn, insts := range over.instsOn {
		if len(insts) == 0 {
			jdel(j.jSynInstOn(), sc.instOn, pn)
		} else {
			jset(j.jSynInstOn(), sc.instOn, pn, insts)
		}
	}
}
