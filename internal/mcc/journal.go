package mcc

import (
	"repro/internal/model"
)

// This file implements the copy-on-write rollback point of the stream
// scheduler's optimistic windows. PR 3 snapshotted every deployed-cache
// map with maps.Clone before each window — O(platform) per window even
// when the window only touches two processors. The journal inverts that
// cost: the window-start map pointers are recorded for free, the commit
// stage writes through jset/jdel which save the prior value of every key
// they overwrite (first write per key only), and rollback restores
// exactly the journaled entries. Snapshot and rollback cost are therefore
// proportional to the window's footprint, not the platform size.
//
// A from-scratch commit inside a window (a cold retry after a rejected
// warm-start attempt) cannot be journaled per key: commitFull builds
// fresh maps and swaps them in wholesale, leaving the window-start maps —
// including every keyed journal entry recorded against them — intact, and
// detaches the journal so later keyed writes (which hit the fresh maps)
// are not recorded. Rollback then restores the window-start pointers and
// reverts the pre-detach entries onto them.

// prior is one journaled map entry: the value the key held before the
// window's first write to it (existed=false marks a key that was absent).
type prior[V any] struct {
	val     V
	existed bool
}

// jset writes m[k]=v, saving the prior entry into journal j first. A nil
// journal map makes it a plain write.
func jset[K comparable, V any](j map[K]prior[V], m map[K]V, k K, v V) {
	if j != nil {
		if _, seen := j[k]; !seen {
			old, ok := m[k]
			j[k] = prior[V]{old, ok}
		}
	}
	m[k] = v
}

// jdel deletes m[k], saving the prior entry into journal j first. A nil
// journal map makes it a plain delete.
func jdel[K comparable, V any](j map[K]prior[V], m map[K]V, k K) {
	if j != nil {
		if _, seen := j[k]; !seen {
			old, ok := m[k]
			j[k] = prior[V]{old, ok}
		}
	}
	delete(m, k)
}

// jrevert restores every journaled entry onto m.
func jrevert[K comparable, V any](j map[K]prior[V], m map[K]V) {
	for k, p := range j {
		if p.existed {
			m[k] = p.val
		} else {
			delete(m, k)
		}
	}
}

// cacheJournal is the rollback point of one optimistic window: the
// window-start pointers of the committed configuration and its cache
// maps, plus the keyed undo entries of every in-place cache write the
// window's commits performed.
type cacheJournal struct {
	deployed *model.FunctionalArchitecture
	impl     *model.ImplementationModel
	history  int

	// candUndos records the in-place candidate mutations of the window's
	// accepted fast-path proposals, in commit order. The deployed-pointer
	// restore alone no longer rolls the architecture back — the fast path
	// mutates the pointed-to object — so rollback replays these in
	// reverse. Appended even after a detach: the mutations are part of
	// the configuration, not of the cache maps a from-scratch commit
	// replaces.
	candUndos []candUndo
	// flowTouch is the window-start committed flow index; commits swap in
	// fresh maps instead of mutating it, so restoring the pointer is the
	// whole rollback.
	flowTouch map[string]bool
	// loads is the window-start committed per-processor load slice;
	// commits swap in fresh slices, so rollback restores the pointer.
	loads []procLoad
	// resTable is the window-start committed timing-resource table;
	// commits patch copy-on-write or build fresh tables, so rollback
	// restores the pointer.
	resTable *resTable
	// connIdx is the window-start committed connection-position index;
	// commits that rebuild the connections swap in a fresh map, so
	// rollback restores the pointer.
	connIdx map[string][]int
	// instTotal is the window-start committed instance count.
	instTotal int

	// Window-start map pointers. Keyed commits mutate these in place
	// (journaled below); a from-scratch commit swaps in fresh maps and
	// leaves these untouched.
	digestMap map[string]uint64
	timingMap map[string]TimingResult
	jobsMap   map[string]timingJob
	secMap    map[model.Connection]bool
	synth     *synthCache
	svcMap    map[string]int

	// Keyed undo entries, recorded against the window-start maps.
	digests   map[string]prior[uint64]
	timing    map[string]prior[TimingResult]
	jobs      map[string]prior[timingJob]
	sec       map[model.Connection]prior[bool]
	synFns    map[string]prior[*model.Function]
	synIns    map[string]prior[[]model.Instance]
	synTasks  map[string]prior[[]model.Task]
	synInstOn map[string]prior[[]model.Instance]
	svcProv   map[string]prior[int]

	// detached marks that a from-scratch commit replaced the cache maps:
	// the window-start maps are final, keyed journaling stops.
	detached bool
}

// The accessors below hand the commit stage the journal map to record
// into; they are nil-receiver-safe and return nil once the journal is
// detached (or when no window is open), which jset/jdel treat as "plain
// write".

func (j *cacheJournal) jDigests() map[string]prior[uint64] {
	if j == nil || j.detached {
		return nil
	}
	return j.digests
}

func (j *cacheJournal) jTiming() map[string]prior[TimingResult] {
	if j == nil || j.detached {
		return nil
	}
	return j.timing
}

func (j *cacheJournal) jJobs() map[string]prior[timingJob] {
	if j == nil || j.detached {
		return nil
	}
	return j.jobs
}

func (j *cacheJournal) jSec() map[model.Connection]prior[bool] {
	if j == nil || j.detached {
		return nil
	}
	return j.sec
}

func (j *cacheJournal) jSynFns() map[string]prior[*model.Function] {
	if j == nil || j.detached {
		return nil
	}
	return j.synFns
}

func (j *cacheJournal) jSynIns() map[string]prior[[]model.Instance] {
	if j == nil || j.detached {
		return nil
	}
	return j.synIns
}

func (j *cacheJournal) jSynTasks() map[string]prior[[]model.Task] {
	if j == nil || j.detached {
		return nil
	}
	return j.synTasks
}

func (j *cacheJournal) jSynInstOn() map[string]prior[[]model.Instance] {
	if j == nil || j.detached {
		return nil
	}
	return j.synInstOn
}

func (j *cacheJournal) jSvcProv() map[string]prior[int] {
	if j == nil || j.detached {
		return nil
	}
	return j.svcProv
}

// beginWindow opens a copy-on-write rollback point: window-start pointers
// are recorded, and every subsequent commit journals the cache entries it
// overwrites. Cost is O(1) regardless of platform size (amortized — the
// history trim below moves at most historyLimit pointers once per limit
// appends). The trim runs here, before the history length is captured,
// because stream proposals append their reports while a window is open,
// where trimming is forbidden (it would shift the rollback index).
func (m *MCC) beginWindow() *cacheJournal {
	m.trimHistory()
	// If the window can roll back into a cache purge, materialize the
	// committed flat lists up front: the restored window-start model must
	// then stand on its own — its only materialization source, the synth
	// cache, is gone after the purge. The purge is reachable solely
	// through the "journal.undo" fault-injection hook in rollbackWindow,
	// so production windows (no rule wired at that hook) skip the
	// materialization entirely and stay O(1); under chaos testing the
	// cost is one pair of flat copies per committed model, not per
	// window (memoized).
	if m.inject.Wired("journal.undo") {
		m.DeployedImpl()
	}
	j := &cacheJournal{
		deployed:  m.deployed,
		impl:      m.impl,
		history:   len(m.History),
		flowTouch: m.deployedFlowTouch,
		loads:     m.deployedLoads,
		resTable:  m.deployedRes,
		connIdx:   m.deployedConnIdx,
		instTotal: m.deployedInstTotal,
		digestMap: m.deployedDigest,
		timingMap: m.deployedTiming,
		jobsMap:   m.deployedJobs,
		secMap:    m.deployedSecVerdicts,
		synth:     m.deployedSynth,
		svcMap:    m.svcProviders,
		digests:   make(map[string]prior[uint64]),
		timing:    make(map[string]prior[TimingResult]),
		jobs:      make(map[string]prior[timingJob]),
		sec:       make(map[model.Connection]prior[bool]),
		synFns:    make(map[string]prior[*model.Function]),
		synIns:    make(map[string]prior[[]model.Instance]),
		synTasks:  make(map[string]prior[[]model.Task]),
		synInstOn: make(map[string]prior[[]model.Instance]),
		svcProv:   make(map[string]prior[int]),
	}
	m.journal = j
	// Fresh heal map per window: reports bound by this window's commits
	// capture it, and the verification pass fills it with the deferred
	// verdicts their table snapshots are still missing. Closed windows
	// drop the controller's reference (commitWindow/rollbackWindow); the
	// bound reports keep theirs.
	m.windowHeals = make(map[resDigestKey]TimingResult)
	return j
}

// commitWindow finalizes the window: the optimistic commits stand, the
// undo entries are dropped. The heal map stays alive only through the
// reports bound inside the window.
func (m *MCC) commitWindow() {
	m.journal = nil
	m.windowHeals = nil
}

// rollbackWindow restores the controller to the window-start state: the
// configuration pointers and history length are reset, the window-start
// cache maps are re-installed, and the journaled entries are reverted
// onto them. Cost is proportional to the window's footprint.
func (m *MCC) rollbackWindow(j *cacheJournal) {
	m.journal = nil
	m.windowHeals = nil
	m.deployed = j.deployed
	m.impl = j.impl
	m.History = m.History[:j.history]
	// Revert the in-place candidate mutations of the window's accepted
	// fast-path proposals, newest first. This restores the deployed
	// *architecture* — configuration, not cache — so it happens
	// unconditionally, before the fault-injection hook below: a failed
	// keyed cache undo can be cured by purging the caches, a corrupted
	// architecture cannot.
	for i := len(j.candUndos) - 1; i >= 0; i-- {
		m.revertChange(j.candUndos[i])
	}
	m.deployedFlowTouch = j.flowTouch
	m.deployedLoads = j.loads
	m.deployedRes = j.resTable
	m.deployedConnIdx = j.connIdx
	m.deployedInstTotal = j.instTotal
	// The function index may describe mid-window slice states the replay
	// above rewound; rebuild lazily from the restored slice. The shard
	// routing index may likewise describe placements the rollback just
	// unwound.
	m.fnIdx = nil
	m.invalidateRoutes()
	// Fault-injection hook modeling a failed keyed undo (e.g. a journal
	// entry lost to memory corruption). The configuration pointers above
	// are plain swaps and always succeed; what cannot be trusted after a
	// failed undo are the incremental cache maps, so they are purged and
	// the controller is quarantined — every subsequent proposal runs the
	// pinned from-scratch path until an accepted commit rebuilds the
	// caches wholesale.
	if _, fired, err := m.inject.Fire(nil, "journal.undo", ""); fired && err != nil {
		m.purgeIncrementalState()
		return
	}
	m.deployedDigest = j.digestMap
	m.deployedTiming = j.timingMap
	m.deployedJobs = j.jobsMap
	m.deployedSecVerdicts = j.secMap
	m.deployedSynth = j.synth
	m.svcProviders = j.svcMap
	jrevert(j.digests, m.deployedDigest)
	jrevert(j.timing, m.deployedTiming)
	jrevert(j.jobs, m.deployedJobs)
	jrevert(j.sec, m.deployedSecVerdicts)
	if j.svcMap != nil {
		jrevert(j.svcProv, m.svcProviders)
	}
	if j.synth != nil {
		jrevert(j.synFns, j.synth.fnByName)
		jrevert(j.synIns, j.synth.instancesOf)
		jrevert(j.synTasks, j.synth.tasksOn)
		jrevert(j.synInstOn, j.synth.instOn)
	}
}

// purgeIncrementalState is the last rung of the degradation ladder: drop
// every incremental cache (including the analyzer memo) and quarantine
// the controller. Proposals decided while quarantined run the pinned
// from-scratch path — slower but dependent only on the committed
// architecture, never on cache state — and the first accepted commit
// rebuilds the caches wholesale (commitFull), lifting the quarantine.
func (m *MCC) purgeIncrementalState() {
	m.quarantined = true
	m.deployedDigest = make(map[string]uint64)
	m.deployedTiming = make(map[string]TimingResult)
	m.deployedJobs = nil
	m.deployedRes = nil
	m.deployedSynth = nil
	m.pendingSynth = nil
	m.deployedSecVerdicts = nil
	m.deployedFlowTouch = nil
	m.deployedLoads = nil
	m.svcProviders = nil
	m.pendingLoads = nil
	m.pendingPlaced = nil
	m.deployedConnIdx = nil
	m.deployedInstTotal = 0
	m.fnIdx = nil
	m.invalidateRoutes()
	m.analyzer.Reset()
}
