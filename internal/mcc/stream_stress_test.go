package mcc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
)

// Stress test for the stream scheduler's copy-on-write rollback: random
// streams with overlapping footprints and planted mid-window rejections
// (timing deadline-missers and safety findings) force optimistic windows
// to replay, and after every stream the controller's deployed caches —
// timing jobs, digests, WCRT tables, synthesis lookup tables, budget
// groups, monitor plan — must be bit-identical to a fresh controller
// that proposed the same stream serially. Run under -race in CI, this
// also exercises the prefetch pool against the journal writes.

// stressPlatform is deliberately tight: one slow safe core and one fast
// core, so random workloads regularly fail timing mid-window.
func stressPlatform() *model.Platform {
	return &model.Platform{
		Processors: []model.Processor{
			{Name: "safe", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "fast", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "bus", BitsPerSec: 500_000, Attached: []string{"safe", "fast"}, Kind: "can"},
		},
	}
}

// stressChange derives the i-th random change: mostly feasible additions
// with occasionally shared services (footprint conflicts), periodically a
// near-capacity function (deferred timing verdict fails mid-window), a
// redundancy violation (deferred safety verdict fails), an update of an
// earlier function, or a removal.
func stressChange(rng *rand.Rand, i int) Change {
	switch rng.Intn(10) {
	case 0: // near-capacity ASIL-D load: often misses deadlines next to others
		f := fn(fmt.Sprintf("heavy%d", i), model.ASILD, 10000, 4000+int64(rng.Intn(4))*500, 64)
		return upd(f)
	case 1: // fail-operational without replicas: deferred safety finding
		f := fn(fmt.Sprintf("failop%d", i), model.ASILD, 40000, 1000, 64)
		f.Contract.FailOperational = true
		return upd(f)
	case 2: // update of an earlier telemetry function (same-name conflict)
		f := fn(fmt.Sprintf("t%d", rng.Intn(i+1)), model.QM, 100000, 1500+int64(rng.Intn(5))*200, 64)
		f.Version = i
		return upd(f)
	case 3: // removal: global footprint, serializes the stream
		return Change{Remove: fmt.Sprintf("t%d", rng.Intn(i+1))}
	case 4: // provider/requirer pair member: service footprint overlap
		f := fn(fmt.Sprintf("svc%d", i), model.QM, 80000, 1200, 64)
		f.Provides = []string{fmt.Sprintf("shared%d", i%3)}
		return upd(f)
	case 5: // cross-domain client of the baseline gate: half granted, half
		// violating (the scoped security check rejects inline mid-window,
		// exercising the per-connection verdict cache under rollback)
		f := fn(fmt.Sprintf("xd%d", i), model.QM, 90000, 1000+int64(rng.Intn(3))*200, 64)
		f.Requires = []string{"core_svc"}
		f.Contract.Domain = "app"
		if rng.Intn(2) == 0 {
			f.Contract.AllowedPeers = []string{"core_svc"}
		}
		return upd(f)
	default: // feasible telemetry addition
		return upd(fn(fmt.Sprintf("t%d", i), model.QM, 100000+int64(rng.Intn(4))*20000, 1500, 64))
	}
}

// cacheFingerprint projects every deployed cache of the controller into a
// comparable value.
func cacheFingerprint(m *MCC) map[string]any {
	fns := make(map[string]model.Function)
	insts := make(map[string][]model.Instance)
	tasks := make(map[string][]model.Task)
	if m.deployedSynth != nil {
		for name, f := range m.deployedSynth.fnByName {
			fns[name] = *f
		}
		for name, ins := range m.deployedSynth.instancesOf {
			insts[name] = ins
		}
		for pn, ts := range m.deployedSynth.tasksOn {
			tasks[pn] = ts
		}
	}
	// DeployedImpl materializes the flat Tasks/Instances lists, so a
	// streamed (lazily committed) controller fingerprints the same as a
	// serially rebuilt one.
	impl := m.DeployedImpl()
	return map[string]any{
		"deployed": m.deployed,
		"secVerd":  m.deployedSecVerdicts,
		"tasks":    impl.Tasks,
		"messages": impl.Messages,
		"conns":    impl.Connections,
		"digests":  m.deployedDigest,
		"timing":   m.deployedTiming,
		"jobs":     m.deployedJobs,
		"monitors": m.DeployedMonitors(),
		"synFns":   fns,
		"synIns":   insts,
		"synTasks": tasks,
	}
}

func TestStreamSchedulerStressRollbackCacheParity(t *testing.T) {
	gate := fn("gate", model.QM, 80000, 1000, 64)
	gate.Provides = []string{"core_svc"}
	gate.Contract.Domain = "core"
	baseline := []model.Function{
		fn("base", model.ASILD, 10000, 3000, 128),
		fn("aux", model.QM, 50000, 4000, 256),
		gate,
	}
	var totalReplays, totalConflicts, totalSpeculated, totalSecurityRejects int
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			changes := make([]Change, 0, 32)
			for i := 0; i < 32; i++ {
				changes = append(changes, stressChange(rng, i))
			}

			mk := func() *MCC {
				m, err := New(stressPlatform())
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range baseline {
					if rep := m.ProposeUpdate(f); !rep.Accepted {
						t.Fatalf("baseline %s rejected: %v", f.Name, rep.Findings)
					}
				}
				return m
			}

			streamed := mk()
			sched := NewStreamScheduler(streamed, WithStreamWindow(8))
			got := sched.Run(changes)

			fresh := mk()
			want := make([]*Report, 0, len(changes))
			for _, c := range changes {
				want = append(want, fresh.propose(c))
			}

			for i := range want {
				if got[i].Accepted != want[i].Accepted || got[i].RejectedAt != want[i].RejectedAt {
					t.Fatalf("change %d (%s): stream decided %v@%q, serial %v@%q",
						i, changes[i], got[i].Accepted, got[i].RejectedAt, want[i].Accepted, want[i].RejectedAt)
				}
				if !reflect.DeepEqual(got[i].Findings, want[i].Findings) {
					t.Fatalf("change %d (%s): findings diverge:\nstream %v\nserial %v",
						i, changes[i], got[i].Findings, want[i].Findings)
				}
				if got[i].RejectedAt == StageSecurity {
					totalSecurityRejects++
				}
			}
			// The rollback invariant of the issue: after replays, every
			// cache must be bit-identical to a fresh serial commit of the
			// same decisions.
			sf, ff := cacheFingerprint(streamed), cacheFingerprint(fresh)
			for key := range ff {
				if !reflect.DeepEqual(sf[key], ff[key]) {
					t.Errorf("cache %q diverges from a fresh serial commit:\nstream %+v\nserial %+v",
						key, sf[key], ff[key])
				}
			}

			st := sched.Stats()
			totalReplays += st.Replays
			totalConflicts += st.Conflicts
			totalSpeculated += st.Speculated
		})
	}
	// The corpus must actually exercise the machinery it guards: rollbacks,
	// footprint conflicts, and verified speculation all have to occur.
	if totalReplays == 0 || totalConflicts == 0 || totalSpeculated == 0 || totalSecurityRejects == 0 {
		t.Fatalf("stress corpus too tame: replays=%d conflicts=%d speculated=%d securityRejects=%d, want all > 0",
			totalReplays, totalConflicts, totalSpeculated, totalSecurityRejects)
	}
}
