package mcc

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

// --- warm-started mapping --------------------------------------------------

func TestWarmStartKeepsUntouchedPlacement(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []model.Function{
		fn("brake", model.ASILD, 5000, 500, 128),
		fn("acc", model.ASILC, 10000, 1500, 256),
		fn("infotainment", model.QM, 50000, 10000, 1024),
	} {
		if rep := m.ProposeUpdate(f); !rep.Accepted {
			t.Fatalf("deploy %s: %v", f.Name, rep.Findings)
		}
	}
	before := make(map[string]string)
	for _, in := range m.DeployedImpl().Tech.Instances {
		before[in.ID()] = in.Processor
	}

	rep := m.ProposeUpdate(fn("telemetry", model.QM, 100000, 2000, 64))
	if !rep.Accepted {
		t.Fatalf("telemetry rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	tr := rep.StageTraceFor(StageMapping)
	if tr == nil || !strings.Contains(tr.Note, "warm-start") {
		t.Fatalf("mapping trace = %+v, want warm-start note", tr)
	}
	for _, in := range m.DeployedImpl().Tech.Instances {
		if want, ok := before[in.ID()]; ok && in.Processor != want {
			t.Fatalf("warm start moved %s from %s to %s", in.ID(), want, in.Processor)
		}
	}
}

func TestWarmStartFallsBackToFullBestFit(t *testing.T) {
	// A 600 KiB function only fits if the deployed 500 KiB one is
	// reshuffled from the big processor to the small one — the residual
	// capacity alone cannot hold it, so warm-start must fall back to the
	// full best-fit instead of rejecting.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "big", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 1000, MaxSafety: model.ASILB},
			{Name: "small", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 500, MaxSafety: model.ASILB},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("f1", model.QM, 100000, 1000, 500)); !rep.Accepted {
		t.Fatalf("f1 rejected: %v", rep.Findings)
	}
	if got := m.DeployedImpl().Tech.Instances[0].Processor; got != "big" {
		t.Fatalf("f1 deployed on %s, want big", got)
	}

	rep := m.ProposeUpdate(fn("f2", model.QM, 100000, 2000, 600))
	if !rep.Accepted {
		t.Fatalf("f2 rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	tr := rep.StageTraceFor(StageMapping)
	if tr == nil || !strings.Contains(tr.Note, "fell back") {
		t.Fatalf("mapping trace = %+v, want fallback note", tr)
	}
	got := make(map[string]string)
	for _, in := range m.DeployedImpl().Tech.Instances {
		got[in.Function] = in.Processor
	}
	if got["f2"] != "big" || got["f1"] != "small" {
		t.Fatalf("placement = %v, want f2 on big, f1 reshuffled to small", got)
	}
}

func TestWarmStartRejectionRedecidedCold(t *testing.T) {
	// A warm-started placement that fails an acceptance test is re-decided
	// from scratch, so the verdict never depends on the warm-start
	// heuristic: the mapping stage must appear twice in the telemetry.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "only", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("a", model.ASILD, 10000, 5200, 1)); !rep.Accepted {
		t.Fatalf("a rejected: %v", rep.Findings)
	}
	rep := m.ProposeUpdate(fn("c", model.ASILD, 14000, 5200, 1))
	if rep.Accepted {
		t.Fatal("unschedulable update accepted")
	}
	if rep.RejectedAt != StageTiming {
		t.Fatalf("rejected at %s, want timing", rep.RejectedAt)
	}
	mappings := 0
	for _, tr := range rep.Stages {
		if tr.Stage == StageMapping {
			mappings++
		}
	}
	if mappings != 2 {
		t.Fatalf("mapping ran %d times, want 2 (warm pass + cold retry)", mappings)
	}
	// The rollback invariant holds across the retry.
	if m.Deployed().FunctionByName("c") != nil {
		t.Fatal("rejected function deployed")
	}
}

func TestSecurityRejectionSkipsColdRetry(t *testing.T) {
	// The security verdict depends on contracts and function/replica
	// identities only, never on placement, so a warm-started attempt it
	// rejects stands without the cold re-decision (no doubled pipeline
	// cost on policy-rejection-heavy streams).
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	srv := fn("acc", model.ASILC, 10000, 1000, 64)
	srv.Provides = []string{"accel_cmd"}
	srv.Contract.Domain = "drive"
	if rep := m.ProposeUpdate(srv); !rep.Accepted {
		t.Fatalf("server rejected: %v", rep.Findings)
	}
	cli := fn("telematics", model.QM, 50000, 1000, 64)
	cli.Requires = []string{"accel_cmd"}
	cli.Contract.Domain = "connectivity" // cross-domain, no permission
	rep := m.ProposeUpdate(cli)
	if rep.Accepted {
		t.Fatal("cross-domain access without permission accepted")
	}
	if rep.RejectedAt != StageSecurity {
		t.Fatalf("rejected at %s, want security", rep.RejectedAt)
	}
	mappings := 0
	for _, tr := range rep.Stages {
		if tr.Stage == StageMapping {
			mappings++
		}
	}
	if mappings != 1 {
		t.Fatalf("mapping ran %d times, want 1 (no cold retry for a placement-independent verdict)", mappings)
	}
}

// --- incremental synthesis -------------------------------------------------

func TestIncrementalSynthesisReusesUntouchedArtifacts(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	prod := fn("radar", model.ASILD, 20000, 9000, 2048)
	prod.Provides = []string{"objects"}
	cons := fn("acc", model.ASILD, 20000, 9000, 2048)
	cons.Requires = []string{"objects"}
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{prod, cons},
		Flows:     []model.Flow{{From: "radar", To: "acc", Service: "objects", MsgBytes: 8, PeriodUS: 20000}},
	}
	if rep := m.ProposeArchitecture(fa); !rep.Accepted {
		t.Fatalf("baseline rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	dep := m.DeployedImpl()
	depMsgs := append([]model.Message(nil), dep.Messages...)
	depConns := append([]model.Connection(nil), dep.Connections...)

	// A serviceless, flowless addition must not rebuild messages or
	// connections, and must reuse the task lists of untouched processors.
	rep := m.ProposeUpdate(fn("telemetry", model.QM, 100000, 2000, 64))
	if !rep.Accepted {
		t.Fatalf("telemetry rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	tr := rep.StageTraceFor(StageSynth)
	if tr == nil || !strings.Contains(tr.Note, "reused") {
		t.Fatalf("synthesis trace = %+v, want reuse note", tr)
	}
	if !strings.Contains(tr.Note, "messages reused") || !strings.Contains(tr.Note, "connections reused") {
		t.Fatalf("synthesis note = %q, want reused messages and connections", tr.Note)
	}
	impl := m.DeployedImpl()
	if !reflect.DeepEqual(impl.Messages, depMsgs) {
		t.Fatalf("messages changed:\nwas %+v\nnow %+v", depMsgs, impl.Messages)
	}
	if !reflect.DeepEqual(impl.Connections, depConns) {
		t.Fatalf("connections changed:\nwas %+v\nnow %+v", depConns, impl.Connections)
	}
	// The incrementally assembled model must still be structurally sound.
	if err := impl.Validate(); err != nil {
		t.Fatalf("incremental impl invalid: %v", err)
	}
	if len(impl.Tasks) != len(dep.Tasks)+1 {
		t.Fatalf("tasks = %d, want %d", len(impl.Tasks), len(dep.Tasks)+1)
	}
}

func TestIncrementalSynthesisRejectsZeroScaledWCET(t *testing.T) {
	// A 1us WCET on a 2x processor scales to a zero-WCET task. The
	// from-scratch path rejects that via impl.Validate; the incremental
	// path must reach the same synthesis-stage verdict through its scoped
	// check of the rebuilt task set, not commit an invalid model.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "fast", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	run := func(opts ...Option) *Report {
		m, err := New(p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if rep := m.ProposeUpdate(fn("base", model.QM, 10000, 4000, 64)); !rep.Accepted {
			t.Fatalf("base rejected: %v", rep.Findings)
		}
		rep := m.ProposeUpdate(fn("tiny", model.QM, 10000, 1, 64))
		if m.Deployed().FunctionByName("tiny") != nil {
			t.Fatal("invalid function deployed")
		}
		return rep
	}
	ri := run()
	rs := run(WithoutIncremental())
	if ri.Accepted || rs.Accepted {
		t.Fatal("zero-scaled-WCET function accepted")
	}
	if ri.RejectedAt != StageSynth || rs.RejectedAt != StageSynth {
		t.Fatalf("rejected at %s / %s, want synthesis", ri.RejectedAt, rs.RejectedAt)
	}
}

func TestIncrementalValidationMatchesFullFindings(t *testing.T) {
	mkMCC := func(opts ...Option) *MCC {
		m, err := New(testPlatform(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if rep := m.ProposeUpdate(fn("base", model.QM, 50000, 1000, 64)); !rep.Accepted {
			t.Fatalf("base rejected: %v", rep.Findings)
		}
		return m
	}
	inc := mkMCC()
	ser := mkMCC(WithoutIncremental())

	bad := fn("broken", model.QM, 1000, 5000, 64) // WCET > deadline
	ri := inc.ProposeUpdate(bad)
	rs := ser.ProposeUpdate(bad)
	if ri.Accepted || rs.Accepted {
		t.Fatal("broken contract accepted")
	}
	if ri.RejectedAt != StageValidate || rs.RejectedAt != StageValidate {
		t.Fatalf("rejected at %s / %s, want validate", ri.RejectedAt, rs.RejectedAt)
	}
	if !reflect.DeepEqual(ri.Findings, rs.Findings) {
		t.Fatalf("findings diverge:\nincremental %v\nserial      %v", ri.Findings, rs.Findings)
	}
}

// --- custom stages (WithStage) ---------------------------------------------

func TestWithStageThermalBudget(t *testing.T) {
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "ecu", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	m, err := New(p, WithStage(DefaultThermalBudget()))
	if err != nil {
		t.Fatal(err)
	}
	// The custom viewpoint runs between security and timing.
	names := m.Pipeline().StageNames()
	pos := make(map[Stage]int, len(names))
	for i, n := range names {
		pos[n] = i
	}
	if !(pos[StageSecurity] < pos[StageThermal] && pos[StageThermal] < pos[StageTiming]) {
		t.Fatalf("stage order = %v", names)
	}

	// 50% utilization: steady state 75C, within the 85C budget.
	if rep := m.ProposeUpdate(fn("cool", model.QM, 10000, 5000, 64)); !rep.Accepted {
		t.Fatalf("cool rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	// 80% utilization: steady state 89.4C, over budget — rejected by the
	// plugged-in viewpoint, deployed config rolled back.
	rep := m.ProposeUpdate(fn("hot", model.QM, 10000, 3000, 64))
	if rep.Accepted {
		t.Fatal("thermally infeasible update accepted")
	}
	if rep.RejectedAt != StageThermal {
		t.Fatalf("rejected at %s, want %s", rep.RejectedAt, StageThermal)
	}
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f, "thermal:") && strings.Contains(f, "exceeds budget") {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings = %v", rep.Findings)
	}
	if m.Deployed().FunctionByName("hot") != nil {
		t.Fatal("rejected function deployed")
	}
	if tr := rep.StageTraceFor(StageThermal); tr == nil {
		t.Fatal("no telemetry for custom stage")
	}
}

// --- satellite: one message per distinct crossed network -------------------

func TestSynthesizeMessagePerCrossedNetwork(t *testing.T) {
	// src on p0 fans out to dst replicas on p1 (reachable via netA) and p2
	// (reachable via netB): the flow loads BOTH buses, so one message per
	// distinct crossed network must be synthesized — charging only the
	// last-seen network would leave netA's real load out of the timing
	// acceptance test entirely.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "p0", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "p1", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILB},
			{Name: "p2", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "netA", BitsPerSec: 500_000, Attached: []string{"p0", "p1"}, Kind: "can"},
			{Name: "netB", BitsPerSec: 500_000, Attached: []string{"p0", "p2"}, Kind: "can"},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	src := fn("src", model.ASILD, 10000, 1000, 64)
	src.Provides = []string{"s"}
	dst := fn("dst", model.ASILB, 10000, 1000, 64)
	dst.Requires = []string{"s"}
	dst.Replicas = 2
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{src, dst},
		Flows:     []model.Flow{{From: "src", To: "dst", Service: "s", MsgBytes: 8, PeriodUS: 10000}},
	}
	tech := &model.TechnicalArchitecture{
		Platform: p,
		Func:     fa,
		Instances: []model.Instance{
			{Function: "src", Replica: 0, Processor: "p0"},
			{Function: "dst", Replica: 0, Processor: "p1"},
			{Function: "dst", Replica: 1, Processor: "p2"},
		},
	}
	impl, err := m.synthesize(tech)
	if err != nil {
		t.Fatal(err)
	}
	if len(impl.Messages) != 2 {
		t.Fatalf("messages = %+v, want one per crossed network", impl.Messages)
	}
	byNet := make(map[string]model.Message)
	for _, msg := range impl.Messages {
		byNet[msg.Network] = msg
	}
	for _, net := range []string{"netA", "netB"} {
		msg, ok := byNet[net]
		if !ok {
			t.Fatalf("no message on %s: %+v", net, impl.Messages)
		}
		if msg.Priority != 1 || msg.PeriodUS != 10000 {
			t.Fatalf("message on %s = %+v", net, msg)
		}
		if !strings.HasSuffix(msg.Name, "@"+net) {
			t.Fatalf("message name %q lacks network disambiguator", msg.Name)
		}
	}
	// Both buses must show up in the timing acceptance test.
	resources := make(map[string]bool)
	jobs, _ := m.timingJobs(nil, impl)
	for _, j := range jobs {
		resources[j.resource] = true
	}
	if !resources["netA"] || !resources["netB"] {
		t.Fatalf("timing jobs cover %v, want both networks", resources)
	}
	// Determinism: a second synthesis yields the identical message list.
	impl2, err := m.synthesize(tech)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(impl.Messages, impl2.Messages) {
		t.Fatalf("message synthesis nondeterministic:\n%v\n%v", impl.Messages, impl2.Messages)
	}
}

func TestSynthesizeSingleNetworkNameUnchanged(t *testing.T) {
	// Flows crossing exactly one network keep the plain service:from->to
	// message name (no @network suffix).
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	prod := fn("radar", model.ASILD, 20000, 9000, 2048)
	prod.Provides = []string{"objects"}
	cons := fn("acc", model.ASILD, 20000, 9000, 2048)
	cons.Requires = []string{"objects"}
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{prod, cons},
		Flows:     []model.Flow{{From: "radar", To: "acc", Service: "objects", MsgBytes: 8, PeriodUS: 20000}},
	}
	rep := m.ProposeArchitecture(fa)
	if !rep.Accepted {
		t.Fatalf("rejected: %v", rep.Findings)
	}
	if len(rep.Impl.Messages) != 1 || rep.Impl.Messages[0].Name != "objects:radar->acc" {
		t.Fatalf("messages = %+v", rep.Impl.Messages)
	}
}

// --- satellite: timing analysis errors surface as findings -----------------

func TestTimingAnalysisErrorSurfacedAsFinding(t *testing.T) {
	// A runTimingJob error (here: a malformed task set with duplicate
	// priorities, which the CPA layer refuses to analyze) must reject the
	// candidate with a finding naming the resource — not flip the verdict
	// silently while dropping the resource from the report.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "only", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	impl := &model.ImplementationModel{
		Tasks: []model.Task{
			{Name: "a#0", Processor: "only", Priority: 1, PeriodUS: 10000, WCETUS: 1000, DeadlineUS: 10000},
			{Name: "b#0", Processor: "only", Priority: 1, PeriodUS: 10000, WCETUS: 1000, DeadlineUS: 10000},
		},
	}
	out := m.analyzeTiming(nil, impl)
	if len(out.findings) == 0 {
		t.Fatal("analysis error produced no findings")
	}
	found := false
	for _, f := range out.findings {
		if strings.Contains(f, "analysis of only failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no analysis-error finding naming the resource: %v", out.findings)
	}
	// The errored resource is excluded from the timing delta but the digest
	// map still covers it (so a later fix is detected as dirty).
	if len(out.delta) != 0 {
		t.Fatalf("errored resource kept a WCRT table: %+v", out.delta)
	}
	if _, ok := out.digests["only"]; !ok {
		t.Fatal("errored resource missing from digest map")
	}
}

// --- satellite: reintegration rollback invariant ---------------------------

func TestReintegrationRejectionKeepsDeployedStateUntouched(t *testing.T) {
	// An observed WCET that passes contract validation but breaks
	// schedulability must leave the deployed configuration, the WCRT
	// tables, and the dirty-tracking digests untouched.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "only", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("a", model.ASILD, 10000, 5200, 1)); !rep.Accepted {
		t.Fatalf("a rejected: %v", rep.Findings)
	}
	if rep := m.ProposeUpdate(fn("c", model.ASILD, 14000, 3000, 1)); !rep.Accepted {
		t.Fatalf("c rejected: %v", rep.Findings)
	}

	implBefore := m.DeployedImpl()
	timingBefore := make(map[string]TimingResult, len(m.deployedTiming))
	for k, v := range m.deployedTiming {
		timingBefore[k] = v
	}
	digestBefore := make(map[string]uint64, len(m.deployedDigest))
	for k, v := range m.deployedDigest {
		digestBefore[k] = v
	}

	// Observed 5200us for c: within its 14000us deadline (contract
	// validation passes) but unschedulable next to a (WCRT 15600).
	m.RecordObservedWCET("c", 5200)
	rep := m.ReintegrateWithObservations()
	if rep.Accepted {
		t.Fatal("schedulability-breaking observation accepted")
	}
	if rep.RejectedAt != StageTiming {
		t.Fatalf("rejected at %s, want timing", rep.RejectedAt)
	}

	if got := m.Deployed().FunctionByName("c").Contract.RealTime.WCETUS; got != 3000 {
		t.Fatalf("deployed WCET evolved to %d after rejection", got)
	}
	if m.DeployedImpl() != implBefore {
		t.Fatal("deployed implementation model replaced after rejection")
	}
	if !reflect.DeepEqual(m.deployedTiming, timingBefore) {
		t.Fatalf("WCRT tables changed after rejection:\nwas %+v\nnow %+v", timingBefore, m.deployedTiming)
	}
	if !reflect.DeepEqual(m.deployedDigest, digestBefore) {
		t.Fatalf("digests changed after rejection:\nwas %+v\nnow %+v", digestBefore, m.deployedDigest)
	}
	// A subsequent benign proposal still integrates cleanly.
	if rep := m.ProposeUpdate(fn("t", model.QM, 100000, 1000, 1)); !rep.Accepted {
		t.Fatalf("post-rejection proposal rejected: %v", rep.Findings)
	}
}
