package mcc

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

func testPlatform() *model.Platform {
	return &model.Platform{
		Processors: []model.Processor{
			{Name: "ecu-safe", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "ecu-safe2", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "ecu-perf", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "can0", BitsPerSec: 500_000, Attached: []string{"ecu-safe", "ecu-safe2", "ecu-perf"}, Kind: "can"},
		},
	}
}

func fn(name string, safetyLvl model.SafetyLevel, periodUS, wcetUS int64, ram int64) model.Function {
	return model.Function{
		Name: name,
		Contract: model.Contract{
			Safety:    safetyLvl,
			RealTime:  model.RealTimeContract{PeriodUS: periodUS, WCETUS: wcetUS},
			Resources: model.ResourceContract{RAMKiB: ram},
		},
	}
}

func TestInitialDeploymentAccepted(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{
			fn("brake", model.ASILD, 5000, 500, 128),
			fn("acc", model.ASILC, 10000, 1500, 256),
			fn("infotainment", model.QM, 50000, 10000, 1024),
		},
	}
	rep := m.ProposeArchitecture(fa)
	if !rep.Accepted {
		t.Fatalf("rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	if len(rep.Impl.Tasks) != 3 {
		t.Fatalf("tasks = %d", len(rep.Impl.Tasks))
	}
	if monitors := rep.FullMonitors(); len(monitors) != 3 {
		t.Fatalf("monitors = %d", len(monitors))
	}
	if m.Deployed().FunctionByName("brake") == nil {
		t.Fatal("brake not deployed")
	}
	if m.DeployedImpl() == nil {
		t.Fatal("no deployed impl")
	}
}

func TestUpdateRejectedKeepsOldConfig(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	rep := m.ProposeUpdate(fn("brake", model.ASILD, 5000, 500, 128))
	if !rep.Accepted {
		t.Fatalf("initial deploy rejected: %v", rep.Findings)
	}
	// Overloading update: WCET 6000 in period 5000 violates the contract
	// validation (WCET > deadline).
	bad := fn("brake", model.ASILD, 5000, 6000, 128)
	rep = m.ProposeUpdate(bad)
	if rep.Accepted {
		t.Fatal("infeasible update accepted")
	}
	if rep.RejectedAt != StageValidate {
		t.Fatalf("rejected at %s, want validate", rep.RejectedAt)
	}
	// Deployed config untouched.
	if got := m.Deployed().FunctionByName("brake").Contract.RealTime.WCETUS; got != 500 {
		t.Fatalf("deployed WCET = %d, rollback failed", got)
	}
}

func TestTimingRejection(t *testing.T) {
	// Single ASIL-D-capable processor: force everything onto it and
	// overload it.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "only", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("a", model.ASILD, 10000, 6000, 1)); !rep.Accepted {
		t.Fatalf("a rejected: %v", rep.Findings)
	}
	// b fits utilization-wise only if a isn't there; together 0.6+0.6 > 1:
	// mapping fails (no feasible processor) — also a correct rejection.
	rep := m.ProposeUpdate(fn("b", model.ASILD, 10000, 6000, 1))
	if rep.Accepted {
		t.Fatal("overload accepted")
	}
	if rep.RejectedAt != StageMapping && rep.RejectedAt != StageTiming {
		t.Fatalf("rejected at %s", rep.RejectedAt)
	}

	// A subtler case: fits by utilization (89%) but is unschedulable under
	// any fixed-priority order: a: C=5200 T=10000, c: C=5200 T=14000.
	// WCRT(c) spans a multi-activation busy window: 15600 > 14000.
	m2, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep := m2.ProposeUpdate(fn("a", model.ASILD, 10000, 5200, 1)); !rep.Accepted {
		t.Fatalf("a rejected: %v", rep.Findings)
	}
	c := fn("c", model.ASILD, 14000, 5200, 1)
	rep = m2.ProposeUpdate(c)
	if rep.Accepted {
		t.Fatal("deadline-missing config accepted")
	}
	if rep.RejectedAt != StageTiming {
		t.Fatalf("rejected at %s, want timing", rep.RejectedAt)
	}
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f, "misses deadline") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deadline finding: %v", rep.Findings)
	}
}

func TestSafetyPlacement(t *testing.T) {
	// Platform whose only fast processor is ASIL-B: an ASIL-D function
	// must land on the certified one; if none fits, reject at mapping.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "perf", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILB},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.ProposeUpdate(fn("brake", model.ASILD, 5000, 500, 128))
	if rep.Accepted {
		t.Fatal("ASIL-D on ASIL-B platform accepted")
	}
	if rep.RejectedAt != StageMapping {
		t.Fatalf("rejected at %s, want mapping", rep.RejectedAt)
	}
}

func TestFailOperationalReplicaSeparation(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	brake := fn("brake", model.ASILD, 5000, 500, 128)
	brake.Contract.FailOperational = true
	brake.Replicas = 2
	rep := m.ProposeUpdate(brake)
	if !rep.Accepted {
		t.Fatalf("rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	procs := map[string]bool{}
	for _, in := range rep.Impl.Tech.Instances {
		procs[in.Processor] = true
	}
	if len(procs) != 2 {
		t.Fatalf("replicas share a processor: %v", rep.Impl.Tech.Instances)
	}
}

func TestSecurityRejection(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	srv := fn("acc", model.ASILC, 10000, 1000, 64)
	srv.Provides = []string{"accel_cmd"}
	srv.Contract.Domain = "drive"
	cli := fn("telematics", model.QM, 50000, 1000, 64)
	cli.Requires = []string{"accel_cmd"}
	cli.Contract.Domain = "connectivity"
	fa := &model.FunctionalArchitecture{Functions: []model.Function{srv, cli}}
	rep := m.ProposeArchitecture(fa)
	if rep.Accepted {
		t.Fatal("cross-domain access without permission accepted")
	}
	if rep.RejectedAt != StageSecurity {
		t.Fatalf("rejected at %s, want security", rep.RejectedAt)
	}
	// With the explicit permission the update passes.
	cli.Contract.AllowedPeers = []string{"accel_cmd"}
	fa2 := &model.FunctionalArchitecture{Functions: []model.Function{srv, cli}}
	rep = m.ProposeArchitecture(fa2)
	if !rep.Accepted {
		t.Fatalf("allowed cross-domain rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
}

func TestMessagesSynthesizedForCrossProcessorFlows(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	// Force separation: radar is QM (only fits ecu-perf is not forced...)
	// Use safety levels to split: producer ASIL-B fits perf cores too, so
	// instead use two ASIL-D functions with big RAM so they spread across
	// the two safe ECUs by best-fit, plus a flow between them.
	prod := fn("radar", model.ASILD, 20000, 9000, 2048)
	prod.Provides = []string{"objects"}
	cons := fn("acc", model.ASILD, 20000, 9000, 2048)
	cons.Requires = []string{"objects"}
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{prod, cons},
		Flows:     []model.Flow{{From: "radar", To: "acc", Service: "objects", MsgBytes: 8, PeriodUS: 20000}},
	}
	rep := m.ProposeArchitecture(fa)
	if !rep.Accepted {
		t.Fatalf("rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	// Best-fit places the two heavy tasks on different ECUs -> one message.
	if len(rep.Impl.Messages) != 1 {
		t.Fatalf("messages = %v", rep.Impl.Messages)
	}
	msg := rep.Impl.Messages[0]
	if msg.Network != "can0" || msg.PeriodUS != 20000 {
		t.Fatalf("message = %+v", msg)
	}
	// The network timing table must include it.
	foundNet := false
	for _, tr := range rep.FullTiming() {
		if tr.Resource == "can0" {
			foundNet = true
			if len(tr.Results) != 1 || !tr.Results[0].Schedulable {
				t.Fatalf("can0 results = %+v", tr.Results)
			}
		}
	}
	if !foundNet {
		t.Fatal("no can0 timing result")
	}
	// Rate monitor planned for the message.
	monitors := rep.FullMonitors()
	rateFound := false
	for _, ms := range monitors {
		if ms.Kind == MonitorRate && ms.Enforce {
			rateFound = true
		}
	}
	if !rateFound {
		t.Fatalf("no rate monitor: %v", monitors)
	}
}

func TestProposeRemoval(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("a", model.QM, 10000, 1000, 64)); !rep.Accepted {
		t.Fatalf("deploy: %v", rep.Findings)
	}
	rep := m.ProposeRemoval("a")
	if !rep.Accepted {
		t.Fatalf("removal rejected: %v", rep.Findings)
	}
	if m.Deployed().FunctionByName("a") != nil {
		t.Fatal("function still deployed")
	}
}

func TestEvolvingContractFromObservations(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("acc", model.ASILC, 10000, 1000, 64)); !rep.Accepted {
		t.Fatalf("deploy: %v", rep.Findings)
	}
	// Execution domain observes 1500us max (model said 1000us).
	m.RecordObservedWCET("acc", 1500)
	rep := m.ReintegrateWithObservations()
	if !rep.Accepted {
		t.Fatalf("reintegration rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	if got := m.Deployed().FunctionByName("acc").Contract.RealTime.WCETUS; got != 1500 {
		t.Fatalf("evolved WCET = %d, want 1500", got)
	}
	// An observation exceeding the deadline must be rejected and the
	// contract must not evolve.
	m.RecordObservedWCET("acc", 20000)
	rep = m.ReintegrateWithObservations()
	if rep.Accepted {
		t.Fatal("impossible observation accepted")
	}
	if got := m.Deployed().FunctionByName("acc").Contract.RealTime.WCETUS; got != 1500 {
		t.Fatalf("deployed WCET changed to %d after rejection", got)
	}
}

func TestHistoryRecorded(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	m.ProposeUpdate(fn("a", model.QM, 10000, 1000, 64))
	m.ProposeUpdate(fn("b", model.QM, 10000, 100000, 64)) // invalid
	if len(m.History) != 2 {
		t.Fatalf("history = %d", len(m.History))
	}
	if !m.History[0].Accepted || m.History[1].Accepted {
		t.Fatal("history outcomes wrong")
	}
}

func TestWithHistoryLimitBoundsReports(t *testing.T) {
	m, err := New(testPlatform(), WithHistoryLimit(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		// Alternate two contract variants of the same function so every
		// proposal is a genuine change with a fresh report.
		wcet := int64(1000 + 100*(i%2))
		rep := m.ProposeUpdate(fn("a", model.QM, 10000, wcet, 64))
		if !rep.Accepted {
			t.Fatalf("proposal %d rejected at %s: %v", i, rep.RejectedAt, rep.Findings)
		}
		if len(m.History) >= 8 {
			t.Fatalf("after proposal %d: history grew to %d (limit 4, amortized bound 8)", i, len(m.History))
		}
	}
	last := m.History[len(m.History)-1]
	if !last.Accepted {
		t.Fatal("newest report lost by trim")
	}
}

func TestWithHistoryLimitNonPositiveKeepsEverything(t *testing.T) {
	m, err := New(testPlatform(), WithHistoryLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.ProposeUpdate(fn("a", model.QM, 10000, int64(1000+100*(i%2)), 64))
	}
	if len(m.History) != 10 {
		t.Fatalf("history = %d, want 10 (unbounded)", len(m.History))
	}
}

func TestSpeedScalingInSynthesis(t *testing.T) {
	// On the 2x processor, WCET halves.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "fast", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.ProposeUpdate(fn("a", model.ASILB, 10000, 4000, 64))
	if !rep.Accepted {
		t.Fatalf("rejected: %v", rep.Findings)
	}
	if got := rep.Impl.Tasks[0].WCETUS; got != 2000 {
		t.Fatalf("scaled WCET = %d, want 2000", got)
	}
}

func TestRemovalOfRequiredProviderRejected(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	srv := fn("radar", model.ASILB, 20000, 1000, 64)
	srv.Provides = []string{"objects"}
	cli := fn("acc", model.ASILC, 20000, 1000, 64)
	cli.Requires = []string{"objects"}
	fa := &model.FunctionalArchitecture{Functions: []model.Function{srv, cli}}
	if rep := m.ProposeArchitecture(fa); !rep.Accepted {
		t.Fatalf("deploy rejected: %v", rep.Findings)
	}
	// Removing the provider strands acc's requirement: reject, keep old.
	rep := m.ProposeRemoval("radar")
	if rep.Accepted {
		t.Fatal("removal of required provider accepted")
	}
	if rep.RejectedAt != StageValidate {
		t.Fatalf("rejected at %s", rep.RejectedAt)
	}
	if m.Deployed().FunctionByName("radar") == nil {
		t.Fatal("rollback failed")
	}
}

func TestIntegrationDeterministic(t *testing.T) {
	run := func() *Report {
		m, err := New(testPlatform())
		if err != nil {
			t.Fatal(err)
		}
		fa := &model.FunctionalArchitecture{
			Functions: []model.Function{
				fn("a", model.ASILD, 10000, 1000, 64),
				fn("b", model.ASILB, 20000, 4000, 128),
				fn("c", model.QM, 50000, 9000, 256),
			},
		}
		return m.ProposeArchitecture(fa)
	}
	r1, r2 := run(), run()
	if !r1.Accepted || !r2.Accepted {
		t.Fatal("deploys rejected")
	}
	if len(r1.Impl.Tasks) != len(r2.Impl.Tasks) {
		t.Fatal("task counts differ")
	}
	for i := range r1.Impl.Tasks {
		if r1.Impl.Tasks[i] != r2.Impl.Tasks[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, r1.Impl.Tasks[i], r2.Impl.Tasks[i])
		}
	}
}

func TestStartupOrder(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	radar := fn("radar", model.ASILB, 20000, 1000, 64)
	radar.Provides = []string{"objects"}
	acc := fn("acc", model.ASILC, 20000, 1000, 64)
	acc.Requires = []string{"objects"}
	acc.Provides = []string{"accel_cmd"}
	brake := fn("brake", model.ASILD, 10000, 500, 64)
	brake.Requires = []string{"accel_cmd"}
	fa := &model.FunctionalArchitecture{Functions: []model.Function{radar, acc, brake}}
	rep := m.ProposeArchitecture(fa)
	if !rep.Accepted {
		t.Fatalf("rejected: %v", rep.Findings)
	}
	order, err := StartupOrder(rep.Impl)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	// Servers before clients: radar < acc < brake.
	if !(pos["radar#0"] < pos["acc#0"] && pos["acc#0"] < pos["brake#0"]) {
		t.Fatalf("order = %v", order)
	}
	if len(order) != 3 {
		t.Fatalf("order covers %d instances", len(order))
	}
}

func TestStartupOrderCycleDetected(t *testing.T) {
	// Hand-built implementation model with a session cycle.
	plat := testPlatform()
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{
			{Name: "a", Provides: []string{"sa"}, Requires: []string{"sb"},
				Contract: model.Contract{RealTime: model.RealTimeContract{PeriodUS: 10000, WCETUS: 100}}},
			{Name: "b", Provides: []string{"sb"}, Requires: []string{"sa"},
				Contract: model.Contract{RealTime: model.RealTimeContract{PeriodUS: 10000, WCETUS: 100}}},
		},
	}
	tech := &model.TechnicalArchitecture{
		Platform: plat, Func: fa,
		Instances: []model.Instance{
			{Function: "a", Processor: "ecu-safe"},
			{Function: "b", Processor: "ecu-safe"},
		},
	}
	impl := &model.ImplementationModel{
		Tech: tech,
		Connections: []model.Connection{
			{Client: "a#0", Server: "b#0", Service: "sb"},
			{Client: "b#0", Server: "a#0", Service: "sa"},
		},
	}
	if _, err := StartupOrder(impl); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestNewRejectsInvalidPlatform(t *testing.T) {
	bad := &model.Platform{Processors: []model.Processor{{Name: "x", Policy: "bogus", SpeedFactor: 1}}}
	if _, err := New(bad); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestProposeBatchAllFeasibleSingleEvaluation(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch().
		Update(fn("brake", model.ASILD, 5000, 500, 128)).
		Update(fn("acc", model.ASILC, 10000, 1500, 256)).
		Update(fn("infotainment", model.QM, 50000, 10000, 1024)).
		Update(fn("telemetry", model.QM, 100000, 2000, 64))
	br := m.ProposeBatch(b)
	if br.Evaluations != 1 {
		t.Fatalf("feasible batch took %d evaluations, want 1", br.Evaluations)
	}
	if br.Accepted != 4 || br.Rejected != 0 {
		t.Fatalf("accepted %d rejected %d, want 4/0", br.Accepted, br.Rejected)
	}
	for _, name := range []string{"brake", "acc", "infotainment", "telemetry"} {
		if m.Deployed().FunctionByName(name) == nil {
			t.Fatalf("%s not deployed after batch accept", name)
		}
	}
}

func TestProposeBatchBisectsToIsolateInfeasible(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	broken := model.Function{
		Name: "broken",
		Contract: model.Contract{
			Safety:   model.QM,
			RealTime: model.RealTimeContract{PeriodUS: 1000, WCETUS: 5000},
		},
	}
	b := NewBatch().
		Update(fn("brake", model.ASILD, 5000, 500, 128)).
		Update(fn("acc", model.ASILC, 10000, 1500, 256)).
		Update(broken).
		Update(fn("telemetry", model.QM, 100000, 2000, 64))
	br := m.ProposeBatch(b)
	if br.Accepted != 3 || br.Rejected != 1 {
		t.Fatalf("accepted %d rejected %d, want 3/1", br.Accepted, br.Rejected)
	}
	if br.Evaluations <= 1 {
		t.Fatalf("bisection should cost extra evaluations, got %d", br.Evaluations)
	}
	if len(br.Outcomes) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(br.Outcomes))
	}
	for _, o := range br.Outcomes {
		wantAccept := o.Change.Update.Name != "broken"
		if o.Accepted != wantAccept {
			t.Fatalf("outcome %s accepted=%v, want %v", o.Change, o.Accepted, wantAccept)
		}
		if !o.Accepted && o.Report.RejectedAt != StageValidate {
			t.Fatalf("broken change rejected at %s, want validate", o.Report.RejectedAt)
		}
	}
	if m.Deployed().FunctionByName("broken") != nil {
		t.Fatal("broken function deployed")
	}
	if m.Deployed().FunctionByName("telemetry") == nil {
		t.Fatal("feasible change after the broken one was lost")
	}
}

func TestProposeBatchMixedUpdateAndRemoval(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("old", model.QM, 50000, 1000, 64)); !rep.Accepted {
		t.Fatalf("seed rejected: %v", rep.Findings)
	}
	br := m.ProposeBatch(NewBatch().
		Update(fn("new", model.QM, 50000, 1000, 64)).
		Remove("old"))
	if br.Accepted != 2 {
		t.Fatalf("accepted %d, want 2: %+v", br.Accepted, br)
	}
	if m.Deployed().FunctionByName("old") != nil {
		t.Fatal("removal not applied")
	}
	if m.Deployed().FunctionByName("new") == nil {
		t.Fatal("update not applied")
	}
}

// TestIncrementalMatchesSerialBaseline drives the same proposal stream
// through the timing-incremental engine, the full-incremental engine, and
// the seed-equivalent serial baseline; every decision must be identical —
// the optimizations may only change how fast the answer arrives, never
// the answer. The timing-only engine shares the serial placement, so its
// findings and WCRT tables must match the baseline bit for bit; the
// full-incremental engine may warm-start to a different (equally valid)
// placement, so it is held to identical accept/reject decisions.
func TestIncrementalMatchesSerialBaseline(t *testing.T) {
	stream := []model.Function{
		fn("brake", model.ASILD, 5000, 500, 128),
		fn("acc", model.ASILC, 10000, 1500, 256),
		fn("infotainment", model.QM, 50000, 10000, 1024),
		fn("hog", model.ASILD, 10000, 9800, 64), // timing/mapping trouble
		fn("telemetry", model.QM, 100000, 2000, 64),
		fn("acc", model.ASILC, 10000, 1800, 256), // update in place
	}
	timingInc, err := New(testPlatform(), WithTimingOnlyIncremental())
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	ser, err := New(testPlatform(), WithoutIncremental(), WithTimingWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range stream {
		ri := timingInc.ProposeUpdate(f)
		rf := full.ProposeUpdate(f)
		rs := ser.ProposeUpdate(f)
		if ri.Accepted != rs.Accepted || ri.RejectedAt != rs.RejectedAt {
			t.Fatalf("proposal %d (%s): timing-incremental %v/%s vs serial %v/%s",
				i, f.Name, ri.Accepted, ri.RejectedAt, rs.Accepted, rs.RejectedAt)
		}
		if rf.Accepted != rs.Accepted || rf.RejectedAt != rs.RejectedAt {
			t.Fatalf("proposal %d (%s): full-incremental %v/%s vs serial %v/%s",
				i, f.Name, rf.Accepted, rf.RejectedAt, rs.Accepted, rs.RejectedAt)
		}
		if !reflect.DeepEqual(ri.Findings, rs.Findings) {
			t.Fatalf("proposal %d findings diverge:\ntiming-incremental %v\nserial             %v", i, ri.Findings, rs.Findings)
		}
		// The deltas legitimately differ per engine (the incremental one
		// re-analyzes only dirty resources); the materialized whole-table
		// views of accepted commits must not.
		if ri.Accepted && !reflect.DeepEqual(ri.FullTiming(), rs.FullTiming()) {
			t.Fatalf("proposal %d timing tables diverge:\ntiming-incremental %+v\nserial             %+v", i, ri.FullTiming(), rs.FullTiming())
		}
	}
	if st := ser.TimingCacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("serial baseline used the analyzer: %+v", st)
	}
}

// TestDirtyTrackingSkipsUntouchedResources verifies that re-proposing a
// configuration identical to the deployed one performs no new analysis.
func TestDirtyTrackingSkipsUntouchedResources(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	f := fn("brake", model.ASILD, 5000, 500, 128)
	if rep := m.ProposeUpdate(f); !rep.Accepted {
		t.Fatalf("rejected: %v", rep.Findings)
	}
	before := m.TimingCacheStats()
	rep := m.ProposeUpdate(f) // identical contract: every resource clean
	if !rep.Accepted {
		t.Fatalf("identical re-proposal rejected: %v", rep.Findings)
	}
	if len(rep.FullTiming()) == 0 {
		t.Fatal("clean re-proposal lost its timing tables")
	}
	if len(rep.TimingDelta) != 0 {
		t.Fatalf("clean re-proposal carries a non-empty timing delta: %+v", rep.TimingDelta)
	}
	after := m.TimingCacheStats()
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("clean re-proposal touched the analyzer: before %+v after %+v", before, after)
	}
}
