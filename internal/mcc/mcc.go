// Package mcc implements the Multi-Change Controller of Section II.A: the
// model-domain authority that "takes full control over the system and
// platform configuration", performing the automated integration process
// for in-field changes. Mirroring the paper, the MCC
//
//  1. collects per-component requirements in the contracting language
//     (package model),
//  2. fits new functionality to the target platform (mapping),
//  3. transforms the technical architecture into an implementation model
//     (tasks with priorities, messages, sessions),
//  4. runs viewpoint analyses as acceptance tests — worst-case response
//     time analysis (package cpa), safety checks (package safety), and
//     security domain checks (package security),
//  5. derives the monitor configuration for the execution domain, and
//  6. commits the new configuration only if every acceptance test passes;
//     otherwise the deployed configuration stays untouched (rollback).
package mcc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cpa"
	"repro/internal/model"
	"repro/internal/safety"
	"repro/internal/security"
)

// Stage names the integration pipeline stages, used in rejection reports.
type Stage string

// Pipeline stages.
const (
	StageValidate Stage = "validate"
	StageMapping  Stage = "mapping"
	StageSynth    Stage = "synthesis"
	StageSafety   Stage = "safety"
	StageSecurity Stage = "security"
	StageTiming   Stage = "timing"
	StageCommit   Stage = "commit"
)

// MonitorKind labels entries of the monitor plan.
type MonitorKind string

// Monitor kinds emitted by the MCC for the execution domain.
const (
	MonitorBudget MonitorKind = "budget" // execution time + deadline
	MonitorRate   MonitorKind = "rate"   // leaky-bucket event rate
)

// MonitorSpec is one monitor the MCC configures in the execution domain:
// "it can configure the monitoring facilities to enforce, e.g., the access
// policy to network resources or real-time behavior where necessary".
type MonitorSpec struct {
	Kind     MonitorKind
	Target   string // task or message name
	PeriodUS int64
	JitterUS int64
	WCETUS   int64
	Enforce  bool
}

// TimingResult carries the per-resource WCRT table of the timing
// acceptance test.
type TimingResult struct {
	Resource string
	Results  []cpa.Result
}

// Report is the outcome of one integration attempt.
type Report struct {
	// Accepted reports whether the new configuration was committed.
	Accepted bool
	// RejectedAt names the stage that failed (empty when accepted).
	RejectedAt Stage
	// Findings lists human-readable acceptance failures.
	Findings []string
	// Impl is the synthesized implementation model (nil if rejected
	// before synthesis).
	Impl *model.ImplementationModel
	// Timing is the WCRT table per resource.
	Timing []TimingResult
	// Monitors is the monitor plan for the execution domain.
	Monitors []MonitorSpec
}

// MCC is the multi-change controller. It owns the deployed configuration.
type MCC struct {
	platform *model.Platform
	deployed *model.FunctionalArchitecture
	impl     *model.ImplementationModel

	// History records all integration reports.
	History []*Report

	// observedWCETUS holds metric feedback from the execution domain:
	// observed execution-time maxima per function, used to evolve
	// contracts ("supervising certain run-time properties ... enables the
	// model domain to detect deviations ... refine its models").
	observedWCETUS map[string]int64

	// analyzer memoizes busy-window analyses across proposals; with
	// incremental integration the timing acceptance test of an unchanged
	// resource is a digest lookup instead of a fixed-point iteration.
	analyzer    *cpa.Analyzer
	incremental bool
	// workers bounds the goroutines analyzing dirty resources in parallel.
	workers int
	// deployedDigest/deployedTiming hold the per-resource task-set digests
	// and WCRT tables of the currently committed configuration; a candidate
	// resource whose digest matches is clean and reuses the deployed table.
	deployedDigest map[string]uint64
	deployedTiming map[string]TimingResult
}

// Option configures an MCC at construction time.
type Option func(*MCC)

// WithTimingWorkers bounds the worker pool that analyzes dirty resources
// during the timing acceptance test. 1 forces serial analysis; the default
// is runtime.GOMAXPROCS(0).
func WithTimingWorkers(n int) Option {
	return func(m *MCC) {
		if n > 0 {
			m.workers = n
		}
	}
}

// WithoutIncrementalTiming disables the memoized analyzer and the
// dirty-resource tracking, re-running the full busy-window analysis over
// every resource on every proposal. This is the seed behavior, kept as the
// measurable baseline for BenchmarkMCCThroughput.
func WithoutIncrementalTiming() Option {
	return func(m *MCC) { m.incremental = false }
}

// New creates an MCC managing the given platform, with an empty deployed
// configuration. By default the timing acceptance test is incremental
// (per-resource memoization plus dirty tracking) and fans dirty resources
// out over a GOMAXPROCS-sized worker pool; see WithoutIncrementalTiming
// and WithTimingWorkers.
func New(p *model.Platform, opts ...Option) (*MCC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &MCC{
		platform:       p,
		deployed:       &model.FunctionalArchitecture{},
		observedWCETUS: make(map[string]int64),
		analyzer:       cpa.NewAnalyzer(),
		incremental:    true,
		workers:        runtime.GOMAXPROCS(0),
		deployedDigest: make(map[string]uint64),
		deployedTiming: make(map[string]TimingResult),
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// TimingCacheStats exposes the analyzer's memoization counters.
func (m *MCC) TimingCacheStats() cpa.AnalyzerStats { return m.analyzer.Stats() }

// Deployed returns the currently deployed functional architecture.
func (m *MCC) Deployed() *model.FunctionalArchitecture { return m.deployed }

// DeployedImpl returns the currently deployed implementation model (nil
// until the first successful integration).
func (m *MCC) DeployedImpl() *model.ImplementationModel { return m.impl }

// ProposeUpdate attempts to integrate fn (a new function or a new version
// of a deployed one) into the running configuration.
func (m *MCC) ProposeUpdate(fn model.Function) *Report {
	return m.integrate(m.deployed.WithFunction(fn))
}

// ProposeRemoval attempts to remove a function from the configuration.
func (m *MCC) ProposeRemoval(name string) *Report {
	return m.integrate(m.deployed.WithoutFunction(name))
}

// ProposeArchitecture attempts to integrate a whole architecture at once
// (initial deployment).
func (m *MCC) ProposeArchitecture(fa *model.FunctionalArchitecture) *Report {
	return m.integrate(fa.Clone())
}

// RecordObservedWCET feeds an observed execution-time maximum (µs) for a
// function back into the model domain. ReintegrateWithObservations uses
// these to evolve the timing contracts.
func (m *MCC) RecordObservedWCET(function string, observedUS int64) {
	if observedUS > m.observedWCETUS[function] {
		m.observedWCETUS[function] = observedUS
	}
}

// ReintegrateWithObservations re-runs the integration with contracts
// evolved to the observed WCET maxima where those exceed the modeled
// values. It returns the report; on acceptance the evolved configuration
// is deployed.
func (m *MCC) ReintegrateWithObservations() *Report {
	cand := m.deployed.Clone()
	for i := range cand.Functions {
		f := &cand.Functions[i]
		if obs := m.observedWCETUS[f.Name]; obs > f.Contract.RealTime.WCETUS {
			f.Contract.RealTime.WCETUS = obs
		}
	}
	return m.integrate(cand)
}

// integrate runs the full pipeline on the candidate architecture.
func (m *MCC) integrate(cand *model.FunctionalArchitecture) *Report {
	rep := &Report{}
	defer func() { m.History = append(m.History, rep) }()

	// Stage 1: contract validation.
	if err := cand.Validate(); err != nil {
		rep.RejectedAt = StageValidate
		rep.Findings = append(rep.Findings, err.Error())
		return rep
	}

	// Stage 2: mapping.
	tech, err := m.mapToPlatform(cand)
	if err != nil {
		rep.RejectedAt = StageMapping
		rep.Findings = append(rep.Findings, err.Error())
		return rep
	}

	// Stage 3: implementation synthesis.
	impl, err := m.synthesize(tech)
	if err != nil {
		rep.RejectedAt = StageSynth
		rep.Findings = append(rep.Findings, err.Error())
		return rep
	}
	rep.Impl = impl

	// Stage 4a: safety acceptance.
	if findings := safety.Check(tech); len(findings) > 0 {
		rep.RejectedAt = StageSafety
		for _, f := range findings {
			rep.Findings = append(rep.Findings, f.String())
		}
		return rep
	}

	// Stage 4b: security acceptance.
	if findings := security.CheckDomains(impl); len(findings) > 0 {
		rep.RejectedAt = StageSecurity
		for _, f := range findings {
			rep.Findings = append(rep.Findings, f.String())
		}
		return rep
	}

	// Stage 4c: timing acceptance.
	timing, digests, ok := m.analyzeTiming(impl)
	rep.Timing = timing
	if !ok {
		rep.RejectedAt = StageTiming
		for _, tr := range timing {
			for _, r := range tr.Results {
				if !r.Schedulable {
					rep.Findings = append(rep.Findings,
						fmt.Sprintf("timing: %s on %s misses deadline (WCRT %dus > %dus)",
							r.Name, tr.Resource, r.WCRTUS, r.DeadlineUS))
				}
			}
		}
		return rep
	}

	// Stage 5: monitor plan.
	rep.Monitors = m.planMonitors(impl)

	// Stage 6: commit.
	m.deployed = cand
	m.impl = impl
	m.deployedDigest = digests
	m.deployedTiming = make(map[string]TimingResult, len(timing))
	for _, tr := range timing {
		m.deployedTiming[tr.Resource] = tr
	}
	rep.Accepted = true
	return rep
}

// mapToPlatform assigns every function replica to a processor:
// greedy best-fit ordered by (safety desc, utilization desc), honouring
// safety certification, RAM budgets, and replica separation.
func (m *MCC) mapToPlatform(fa *model.FunctionalArchitecture) (*model.TechnicalArchitecture, error) {
	type load struct {
		utilPPM int64
		ramKiB  int64
	}
	loads := make(map[string]*load, len(m.platform.Processors))
	for i := range m.platform.Processors {
		loads[m.platform.Processors[i].Name] = &load{}
	}

	// Deterministic placement order: hardest constraints first.
	order := make([]*model.Function, len(fa.Functions))
	for i := range fa.Functions {
		order[i] = &fa.Functions[i]
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Contract.Safety != order[j].Contract.Safety {
			return order[i].Contract.Safety > order[j].Contract.Safety
		}
		ui, uj := utilPPM(order[i]), utilPPM(order[j])
		if ui != uj {
			return ui > uj
		}
		return order[i].Name < order[j].Name
	})

	var instances []model.Instance
	for _, f := range order {
		usedProcs := make(map[string]bool)
		for r := 0; r < f.EffectiveReplicas(); r++ {
			best := ""
			var bestUtil int64 = -1
			for i := range m.platform.Processors {
				p := &m.platform.Processors[i]
				if p.MaxSafety < f.Contract.Safety {
					continue
				}
				if f.EffectiveReplicas() > 1 && usedProcs[p.Name] {
					continue // replica separation
				}
				l := loads[p.Name]
				scaledUtil := scaleUtilPPM(utilPPM(f), p.SpeedFactor)
				if l.utilPPM+scaledUtil > 1_000_000 {
					continue
				}
				if l.ramKiB+f.Contract.Resources.RAMKiB > p.RAMKiB {
					continue
				}
				// Best fit: lowest resulting utilization.
				if bestUtil < 0 || l.utilPPM+scaledUtil < bestUtil {
					best = p.Name
					bestUtil = l.utilPPM + scaledUtil
				}
			}
			if best == "" {
				return nil, fmt.Errorf("mcc: no feasible processor for %s#%d (safety %v, util %.1f%%, ram %d KiB)",
					f.Name, r, f.Contract.Safety, float64(utilPPM(f))/10000, f.Contract.Resources.RAMKiB)
			}
			l := loads[best]
			p := m.platform.ProcessorByName(best)
			l.utilPPM += scaleUtilPPM(utilPPM(f), p.SpeedFactor)
			l.ramKiB += f.Contract.Resources.RAMKiB
			usedProcs[best] = true
			instances = append(instances, model.Instance{Function: f.Name, Replica: r, Processor: best})
		}
	}
	sort.Slice(instances, func(i, j int) bool { return instances[i].Less(instances[j]) })
	tech := &model.TechnicalArchitecture{Platform: m.platform, Func: fa, Instances: instances}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	return tech, nil
}

func utilPPM(f *model.Function) int64 {
	rt := f.Contract.RealTime
	if !rt.HasTiming() {
		return 0
	}
	return rt.WCETUS * 1_000_000 / rt.PeriodUS
}

func scaleUtilPPM(ppm int64, speed float64) int64 {
	return int64(float64(ppm) / speed)
}

// synthesize derives the implementation model: per-processor tasks with
// deadline-monotonic priorities (WCET scaled by processor speed),
// inter-processor messages from flows, and sessions from service
// requirements.
func (m *MCC) synthesize(tech *model.TechnicalArchitecture) (*model.ImplementationModel, error) {
	impl := &model.ImplementationModel{Tech: tech}

	// One pass of lookup tables instead of linear scans per instance: the
	// synthesis loops below are quadratic otherwise and dominate the
	// integration pipeline on fleet-sized architectures.
	fnByName := make(map[string]*model.Function, len(tech.Func.Functions))
	for i := range tech.Func.Functions {
		f := &tech.Func.Functions[i]
		fnByName[f.Name] = f
	}
	instancesOf := make(map[string][]model.Instance, len(tech.Func.Functions))
	for _, in := range tech.Instances {
		instancesOf[in.Function] = append(instancesOf[in.Function], in)
	}
	for _, ins := range instancesOf {
		sort.Slice(ins, func(i, j int) bool { return ins[i].Replica < ins[j].Replica })
	}

	// Tasks.
	for _, pn := range procNames(m.platform) {
		p := m.platform.ProcessorByName(pn)
		insts := tech.InstancesOn(pn)
		type cand struct {
			inst model.Instance
			fn   *model.Function
		}
		var cands []cand
		for _, in := range insts {
			f := fnByName[in.Function]
			if f == nil || !f.Contract.RealTime.HasTiming() {
				continue
			}
			cands = append(cands, cand{in, f})
		}
		// Deadline-monotonic order.
		sort.Slice(cands, func(i, j int) bool {
			di := cands[i].fn.Contract.RealTime.EffectiveDeadlineUS()
			dj := cands[j].fn.Contract.RealTime.EffectiveDeadlineUS()
			if di != dj {
				return di < dj
			}
			return cands[i].inst.Less(cands[j].inst)
		})
		for i, c := range cands {
			rt := c.fn.Contract.RealTime
			impl.Tasks = append(impl.Tasks, model.Task{
				Name:       c.inst.ID(),
				Processor:  pn,
				Priority:   i + 1,
				PeriodUS:   rt.PeriodUS,
				JitterUS:   rt.JitterUS,
				WCETUS:     int64(float64(rt.WCETUS) / p.SpeedFactor),
				DeadlineUS: rt.EffectiveDeadlineUS(),
				Safety:     c.fn.Contract.Safety,
			})
		}
	}

	// Messages: one per flow whose endpoints are on different processors.
	type msgCand struct {
		flow model.Flow
		net  string
	}
	var msgs []msgCand
	for _, fl := range tech.Func.Flows {
		if fl.PeriodUS <= 0 {
			continue // sporadic flows handled by rate monitors only
		}
		fromInsts := instancesOf[fl.From]
		toInsts := instancesOf[fl.To]
		crossing := false
		var netName string
		for _, fi := range fromInsts {
			for _, ti := range toInsts {
				if fi.Processor == ti.Processor {
					continue
				}
				n := m.platform.Connecting(fi.Processor, ti.Processor)
				if n == nil {
					return nil, fmt.Errorf("mcc: no network connects %s and %s for flow %s->%s",
						fi.Processor, ti.Processor, fl.From, fl.To)
				}
				crossing = true
				netName = n.Name
			}
		}
		if crossing {
			msgs = append(msgs, msgCand{fl, netName})
		}
	}
	// Deadline(=period)-monotonic message priorities per network.
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].flow.PeriodUS != msgs[j].flow.PeriodUS {
			return msgs[i].flow.PeriodUS < msgs[j].flow.PeriodUS
		}
		return msgs[i].flow.Service < msgs[j].flow.Service
	})
	prioByNet := make(map[string]int)
	for _, mc := range msgs {
		prioByNet[mc.net]++
		impl.Messages = append(impl.Messages, model.Message{
			Name:       fmt.Sprintf("%s:%s->%s", mc.flow.Service, mc.flow.From, mc.flow.To),
			Network:    mc.net,
			Priority:   prioByNet[mc.net],
			Bytes:      mc.flow.MsgBytes,
			PeriodUS:   mc.flow.PeriodUS,
			DeadlineUS: mc.flow.PeriodUS,
		})
	}

	// Connections: every requirer connects to the (first) provider.
	providerOf := make(map[string]string) // service -> first provider name
	for i := range tech.Func.Functions {
		f := &tech.Func.Functions[i]
		for _, svc := range f.Provides {
			if cur, ok := providerOf[svc]; !ok || f.Name < cur {
				providerOf[svc] = f.Name
			}
		}
	}
	for _, in := range tech.Instances {
		client := fnByName[in.Function]
		if client == nil {
			continue
		}
		for _, svc := range client.Requires {
			provName, ok := providerOf[svc]
			if !ok {
				return nil, fmt.Errorf("mcc: unprovided service %q", svc)
			}
			prov := instancesOf[provName]
			if len(prov) == 0 {
				return nil, fmt.Errorf("mcc: provider %q not deployed", provName)
			}
			server := fnByName[provName]
			impl.Connections = append(impl.Connections, model.Connection{
				Client:      in.ID(),
				Server:      prov[0].ID(),
				Service:     svc,
				CrossDomain: client.Contract.Domain != server.Contract.Domain,
			})
		}
	}

	if err := impl.Validate(); err != nil {
		return nil, err
	}
	return impl, nil
}

// timingJob is one resource's share of the timing acceptance test.
type timingJob struct {
	resource string
	spnp     bool
	tasks    []cpa.Task
	digest   uint64
}

// timingJobs derives the per-resource CPA task sets of the implementation
// model in deterministic order: processors (sorted by name), then networks
// (platform order). Resources without load are skipped.
func (m *MCC) timingJobs(impl *model.ImplementationModel) []timingJob {
	var jobs []timingJob

	for _, pn := range procNames(m.platform) {
		tasks := impl.TasksOn(pn)
		if len(tasks) == 0 {
			continue
		}
		ct := make([]cpa.Task, 0, len(tasks))
		for _, t := range tasks {
			ct = append(ct, cpa.Task{
				Name:       t.Name,
				Priority:   t.Priority,
				WCETUS:     t.WCETUS,
				Event:      cpa.EventModel{PeriodUS: t.PeriodUS, JitterUS: t.JitterUS},
				DeadlineUS: t.DeadlineUS,
			})
		}
		jobs = append(jobs, timingJob{resource: pn, tasks: ct, digest: cpa.TaskSetDigest(ct)})
	}

	for i := range m.platform.Networks {
		n := &m.platform.Networks[i]
		msgs := impl.MessagesOn(n.Name)
		if len(msgs) == 0 {
			continue
		}
		ct := make([]cpa.Task, 0, len(msgs))
		for _, msg := range msgs {
			// Worst-case stuffed CAN frame time in µs.
			wcBits := int64(47 + 8*msg.Bytes + (34+8*msg.Bytes-1)/4)
			wcetUS := wcBits * 1_000_000 / n.BitsPerSec
			if wcetUS < 1 {
				wcetUS = 1
			}
			ct = append(ct, cpa.Task{
				Name:       msg.Name,
				Priority:   msg.Priority,
				WCETUS:     wcetUS,
				Event:      cpa.EventModel{PeriodUS: msg.PeriodUS},
				DeadlineUS: msg.DeadlineUS,
			})
		}
		jobs = append(jobs, timingJob{resource: n.Name, spnp: true, tasks: ct, digest: cpa.TaskSetDigest(ct)})
	}
	return jobs
}

// analyzeTiming runs CPA on every processor (SPP) and network (SPNP/CAN).
// With incremental integration, resources whose task-set digest matches the
// deployed configuration are clean and reuse the committed WCRT table;
// dirty resources are fanned out over the worker pool and the results are
// merged back in deterministic resource order. The returned digest map
// covers every analyzed resource and is committed by integrate on accept.
func (m *MCC) analyzeTiming(impl *model.ImplementationModel) ([]TimingResult, map[string]uint64, bool) {
	jobs := m.timingJobs(impl)
	digests := make(map[string]uint64, len(jobs))
	results := make([]TimingResult, len(jobs))
	errs := make([]error, len(jobs))

	var dirty []int
	for i, j := range jobs {
		digests[j.resource] = j.digest
		if m.incremental && m.deployedDigest[j.resource] == j.digest {
			if tr, ok := m.deployedTiming[j.resource]; ok {
				results[i] = tr
				continue
			}
		}
		dirty = append(dirty, i)
	}

	workers := m.workers
	if workers > len(dirty) {
		workers = len(dirty)
	}
	if workers <= 1 {
		for _, i := range dirty {
			results[i], errs[i] = m.runTimingJob(jobs[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = m.runTimingJob(jobs[i])
				}
			}()
		}
		for _, i := range dirty {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	allOK := true
	out := make([]TimingResult, 0, len(jobs))
	for i := range jobs {
		if errs[i] != nil {
			allOK = false
			continue
		}
		for _, r := range results[i].Results {
			if !r.Schedulable {
				allOK = false
			}
		}
		out = append(out, results[i])
	}
	return out, digests, allOK
}

// runTimingJob analyzes one resource, through the memoizing analyzer when
// incremental integration is on, or from scratch for the serial baseline.
func (m *MCC) runTimingJob(j timingJob) (TimingResult, error) {
	var res []cpa.Result
	var err error
	switch {
	case m.incremental && j.spnp:
		res, err = m.analyzer.AnalyzeSPNP(j.tasks)
	case m.incremental:
		res, err = m.analyzer.AnalyzeSPP(j.tasks)
	case j.spnp:
		res, err = cpa.AnalyzeSPNP(j.tasks)
	default:
		res, err = cpa.AnalyzeSPP(j.tasks)
	}
	return TimingResult{Resource: j.resource, Results: res}, err
}

// planMonitors derives the execution-domain monitor configuration.
func (m *MCC) planMonitors(impl *model.ImplementationModel) []MonitorSpec {
	var out []MonitorSpec
	for _, t := range impl.Tasks {
		out = append(out, MonitorSpec{
			Kind: MonitorBudget, Target: t.Name,
			PeriodUS: t.PeriodUS, JitterUS: t.JitterUS, WCETUS: t.WCETUS,
		})
	}
	for _, msg := range impl.Messages {
		out = append(out, MonitorSpec{
			Kind: MonitorRate, Target: msg.Name,
			PeriodUS: msg.PeriodUS, Enforce: true,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// StartupOrder resolves the run-time dependencies between the software
// components of an implementation model (after [3]: "resolve run-time
// dependencies between software components"): servers start before their
// clients so that every session can be established on first try. The
// result is a total, deterministic order; an error is returned when the
// session graph contains a cycle (mutually dependent components need a
// different startup protocol).
func StartupOrder(impl *model.ImplementationModel) ([]string, error) {
	// Build client -> server edges over instance IDs.
	ids := make([]string, 0, len(impl.Tech.Instances))
	for _, in := range impl.Tech.Instances {
		ids = append(ids, in.ID())
	}
	sort.Strings(ids)
	deps := make(map[string][]string)       // client -> servers
	indeg := make(map[string]int)           // number of unstarted servers
	dependents := make(map[string][]string) // server -> clients
	for _, id := range ids {
		indeg[id] = 0
	}
	for _, c := range impl.Connections {
		deps[c.Client] = append(deps[c.Client], c.Server)
		dependents[c.Server] = append(dependents[c.Server], c.Client)
		indeg[c.Client]++
	}
	// Kahn's algorithm with deterministic tie-break.
	var queue []string
	for _, id := range ids {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Strings(queue)
	var order []string
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		var next []string
		for _, cl := range dependents[id] {
			indeg[cl]--
			if indeg[cl] == 0 {
				next = append(next, cl)
			}
		}
		sort.Strings(next)
		queue = append(queue, next...)
	}
	if len(order) != len(ids) {
		var stuck []string
		for _, id := range ids {
			if indeg[id] > 0 {
				stuck = append(stuck, id)
			}
		}
		return nil, fmt.Errorf("mcc: cyclic session dependencies among %v", stuck)
	}
	return order, nil
}

func procNames(p *model.Platform) []string {
	out := make([]string, 0, len(p.Processors))
	for i := range p.Processors {
		out = append(out, p.Processors[i].Name)
	}
	sort.Strings(out)
	return out
}
