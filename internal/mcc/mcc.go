// Package mcc implements the Multi-Change Controller of Section II.A: the
// model-domain authority that "takes full control over the system and
// platform configuration", performing the automated integration process
// for in-field changes. Mirroring the paper, the MCC
//
//  1. collects per-component requirements in the contracting language
//     (package model),
//  2. fits new functionality to the target platform (mapping),
//  3. transforms the technical architecture into an implementation model
//     (tasks with priorities, messages, sessions),
//  4. runs viewpoint analyses as acceptance tests — worst-case response
//     time analysis (package cpa), safety checks (package safety), and
//     security domain checks (package security),
//  5. derives the monitor configuration for the execution domain, and
//  6. commits the new configuration only if every acceptance test passes;
//     otherwise the deployed configuration stays untouched (rollback).
//
// The integration process is organized as a staged acceptance-test
// pipeline (package pipeline): every step above is a pipeline.Stage
// operating on a shared pipeline.Context, and additional viewpoints
// (e.g. a thermal budget backed by package thermal) plug in via
// WithStage. By default every stage works incrementally against the
// deployed configuration — validation re-checks only the changed
// functions and their flow neighborhoods, mapping warm-starts from the
// deployed placement, synthesis rebuilds only affected processors and
// services, and the timing test memoizes per-resource busy-window
// analyses — while WithoutIncremental restores the from-scratch seed
// behavior as a measurable baseline.
package mcc

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cpa"
	"repro/internal/faultinject"
	"repro/internal/mcc/pipeline"
	"repro/internal/model"
)

// Stage names the integration pipeline stages, used in rejection reports.
// It aliases pipeline.StageName so custom stages and MCC reports share one
// namespace.
type Stage = pipeline.StageName

// Pipeline stages.
const (
	StageValidate = pipeline.StageValidate
	StageMapping  = pipeline.StageMapping
	StageSynth    = pipeline.StageSynth
	StageSafety   = pipeline.StageSafety
	StageSecurity = pipeline.StageSecurity
	StageTiming   = pipeline.StageTiming
	StageMonitors = pipeline.StageMonitors
	StageCommit   = pipeline.StageCommit
)

// MonitorKind labels entries of the monitor plan.
type MonitorKind = pipeline.MonitorKind

// Monitor kinds emitted by the MCC for the execution domain.
const (
	MonitorBudget = pipeline.MonitorBudget // execution time + deadline
	MonitorRate   = pipeline.MonitorRate   // leaky-bucket event rate
)

// MonitorSpec is one monitor the MCC configures in the execution domain.
type MonitorSpec = pipeline.MonitorSpec

// TimingResult carries the per-resource WCRT table of the timing
// acceptance test.
type TimingResult = pipeline.TimingResult

// Report is the outcome of one integration attempt, including per-stage
// wall-clock telemetry (Report.Stages).
type Report = pipeline.Report

// StageTrace is the per-stage telemetry entry of a Report.
type StageTrace = pipeline.StageTrace

// MCC is the multi-change controller. It owns the deployed configuration.
type MCC struct {
	platform *model.Platform
	deployed *model.FunctionalArchitecture
	impl     *model.ImplementationModel

	// History records integration reports, newest last. It is bounded to
	// the most recent historyLimit reports (see WithHistoryLimit): a
	// long-lived fleet controller deciding thousands of changes must not
	// retain every report — and its full per-resource timing table —
	// forever. Trimming is amortized (the slice may grow to twice the
	// limit before the newest limit reports are copied down) and never
	// happens while a stream window is open, so the window journal's
	// history index stays valid for rollback truncation.
	History []*Report
	// historyLimit bounds History; non-positive keeps every report.
	historyLimit int

	// observedWCETUS holds metric feedback from the execution domain:
	// observed execution-time maxima per function, used to evolve
	// contracts ("supervising certain run-time properties ... enables the
	// model domain to detect deviations ... refine its models").
	observedWCETUS map[string]int64

	// analyzer memoizes busy-window analyses across proposals; with
	// incremental integration the timing acceptance test of an unchanged
	// resource is a digest lookup instead of a fixed-point iteration.
	analyzer *cpa.Analyzer
	// incTiming enables the memoized analyzer and dirty-resource tracking.
	incTiming bool
	// incPre enables the incremental pre-timing stages: scoped validation,
	// warm-started mapping, and partial synthesis against the deployed
	// implementation model.
	incPre bool
	// workers bounds the goroutines analyzing dirty resources in parallel.
	workers int
	// deployedDigest/deployedTiming hold the per-resource task-set digests
	// and WCRT tables of the currently committed configuration; a candidate
	// resource whose digest matches is clean and reuses the deployed table.
	deployedDigest map[string]uint64
	deployedTiming map[string]TimingResult
	// deployedJobs caches the committed per-resource CPA task sets so the
	// timing stage can splice clean resources' jobs without re-scanning
	// the implementation model (diff-proportional job construction).
	deployedJobs map[string]timingJob
	// deployedRes is the committed timing state as a chunked persistent
	// table in deterministic resource order (loaded processors sorted by
	// name, then loaded networks in platform order): each entry pairs the
	// committed CPA job with its committed WCRT table. It accelerates the
	// maps above — a proposal's job construction merges it against the
	// small sorted affected set, copying untouched entries positionally
	// without a single map lookup — and it is what accepted reports bind
	// their whole-table views to (Report.FullTiming/FullMonitors). The
	// maps stay authoritative; a nil table (purge, cold controller) falls
	// back to the map walk. Keyed commits patch it copy-on-write (spine
	// plus affected chunks, O(diff)), so the previous pointer — a window
	// journal's rollback point, a bound report's snapshot — stays valid
	// and shares every untouched chunk.
	deployedRes *resTable
	// windowHeals, while a stream window is open, collects the verified
	// deferred timing verdicts keyed by {resource, task-set digest}.
	// Reports committed optimistically inside the window bind their table
	// snapshot before the deferred analyses have run; their materializers
	// consult this map to fill the entries that were still pending at
	// commit time. Digest-keyed because two proposals of one window can
	// defer the same processor with different task sets.
	windowHeals map[resDigestKey]TimingResult
	// deployedSynth caches the committed synthesis lookup tables (function
	// contracts by name, replica instances by function, per-processor task
	// lists) next to deployedJobs, so incremental synthesis splices
	// untouched processors' task lists without re-deriving synthLookups;
	// commits invalidate only diff-touched entries. Maintained only while
	// the pre-timing stages run incrementally (incPre).
	deployedSynth *synthCache
	// pendingSynth is the diff-sized lookup overlay of the most recent
	// incremental synthesis, applied to deployedSynth by the commit stage.
	pendingSynth *synthOverlay
	// deployedSecVerdicts caches the committed per-connection security
	// verdicts next to deployedJobs/deployedSynth. Every key is a
	// connection of the committed implementation model that passed the
	// cross-domain check (a configuration only commits after the security
	// stage accepted it, so the cached verdict is always "clean"); the
	// scoped security check re-verifies only connections whose client or
	// server function the diff touched, or that are missing from the
	// cache (new or rewired sessions after a connection rebuild), and
	// splices the rest. Maintained only while the pre-timing stages run
	// incrementally (incPre).
	deployedSecVerdicts map[model.Connection]bool
	// svcProviders counts, per service name, how many Provides occurrences
	// the committed architecture carries. The validation fast path answers
	// "is this required service provided" in O(1) against it; keyed
	// commits adjust only the touched functions' occurrences (journaled),
	// from-scratch commits rebuild it wholesale. Maintained only while the
	// pre-timing stages run incrementally (incPre).
	svcProviders map[string]int
	// deployedFlowTouch maps every function name referenced by a committed
	// flow to true. Together with deployedSynth.fnByName it is the O(1)
	// deployed-function lookup DiffFromChange and declaredFootprint use
	// instead of walking the architecture; rebuilt wholesale by
	// from-scratch commits and by keyed commits whose diff changed the
	// flow set (commits never mutate the map in place, so a window journal
	// rolls it back by restoring the window-start pointer).
	deployedFlowTouch map[string]bool
	// deployedLoads holds the committed per-processor residual-capacity
	// accounting (scaled utilization and RAM), indexed by platform
	// processor position. The warm-started mapping copies it and adjusts
	// only the diff instead of re-accounting every kept instance. Commits
	// swap in a fresh slice — never an in-place write — so a window
	// journal rolls back by restoring the window-start pointer. Maintained
	// only while the pre-timing stages run incrementally (incPre).
	deployedLoads []procLoad
	// loadScratch is the reusable per-proposal placer buffer; an accepted
	// keyed commit takes ownership of it as the new deployedLoads.
	loadScratch []procLoad
	// pendingLoads points at the placer buffer of the most recent
	// warm-started mapping (the final per-processor totals of the
	// candidate placement), handed to the commit stage.
	pendingLoads []procLoad
	// pendingPlaced holds the fresh replica placements of the most recent
	// O(diff) warm-started mapping, keyed by function (replica-ascending,
	// the order the placer emits). The synthesis overlay reads the touched
	// functions' placements from it, which is what lets the warm path skip
	// materializing the platform-sized candidate instance list entirely.
	pendingPlaced map[string][]model.Instance
	// fnIdx is the lazily built name->position index of the deployed
	// function slice, maintained by the fast path's in-place mutations;
	// anything that replaces or reorders the slice wholesale (clone-based
	// commit, window rollback, purge) drops it and the next lookup
	// rebuilds. It turns the per-proposal O(n) fnIndexOf/FunctionByName
	// scans of the fast path into map hits.
	fnIdx map[string]int
	// deployedConnIdx maps each function name to the ascending positions
	// of the committed connections it is incident to (client or server
	// side). While the session list is unrebuilt it aliases the committed
	// one and every row has a committed-clean verdict, so the scoped
	// security check walks just the touched functions' positions instead
	// of scanning (and hashing) every connection. Rebuilt fresh — never
	// mutated in place — by from-scratch commits and by keyed commits that
	// rebuilt the connections, so a window journal rolls back by pointer.
	// Maintained only while the pre-timing stages run incrementally.
	deployedConnIdx map[string][]int
	// deployedInstTotal is the committed instance count, maintained so the
	// warm-started mapping can report its kept-instance telemetry without
	// materializing the flat instance list it no longer builds.
	deployedInstTotal int

	// pendingJobs is the job list of the most recent timing-stage run,
	// handed from the timing stage to the monitor and commit stages.
	pendingJobs []timingJob
	// pendingResults holds the per-job WCRT tables of the most recent
	// non-deferred timing run, indexed like pendingJobs (nil under
	// deferred checks, where dirty analyses have not run yet); the keyed
	// commit reads the results of scanned resources from it.
	pendingResults []TimingResult
	// procs is the platform's processor-name iteration order, sorted once
	// at construction (the platform is immutable for the MCC's lifetime).
	procs []string
	// procIdx maps a processor name to its position in
	// platform.Processors, built once at construction; the placer and the
	// commit stage index loads slices through it instead of scanning the
	// processor list per lookup.
	procIdx map[string]int
	// parts is the lazily computed static processor partition of the
	// platform (see partition.go); the platform is immutable, so the
	// partition never invalidates.
	parts *platformParts
	// fnParts caches the sharded scheduler's function->shard routing,
	// resolved from the committed instance placements. Keyed commits
	// refresh the diff-touched entries; from-scratch commits, purges,
	// and window rollbacks drop the map wholesale (invalidateRoutes) and
	// lookups rebuild lazily. Purely a window-formation heuristic — a
	// stale entry could only regroup a change, never change a decision.
	fnParts map[string]int
	// journal, when non-nil, is the open copy-on-write rollback point of a
	// stream-scheduler window: commits record the prior value of every
	// cache entry they overwrite instead of the window cloning whole maps.
	journal *cacheJournal
	// scratch holds the MCC-owned buffers the timing hot path reuses
	// across proposals.
	scratch timingScratch
	// deferChecks makes newContext ask the pure verdict stages (safety,
	// security, timing) to defer their checks (optimistic evaluation);
	// set only by the StreamScheduler, which re-validates every deferred
	// verdict before a window is final.
	deferChecks bool
	// lastDeferred is the deferred-check record of the most recent
	// pipeline pass under deferChecks.
	lastDeferred *deferredChecks

	// custom holds acceptance stages registered via WithStage; they run
	// between the security and timing stages.
	custom []pipeline.Stage
	// pipe is the assembled integration pipeline.
	pipe *pipeline.Pipeline

	// inject, when non-nil, fires fault-injection hooks on every pipeline
	// stage, the timing worker pool, the stream prefetch pool, and the
	// window-journal undo path (the analyzer's hooks are installed in New).
	inject *faultinject.Injector
	// proposalDeadline, when > 0, bounds every proposal's wall clock:
	// integrate wraps the proposal context with this timeout, and expiry
	// rejects deterministically with a finding (never a hang).
	proposalDeadline time.Duration
	// quarantined marks the incremental state suspect (journal undo
	// failure, purged caches): proposals decide on the pinned
	// from-scratch path, reported Degraded, until an accepted commit
	// rebuilds the caches wholesale (commitFull clears the flag).
	quarantined bool
	// pinned is set while the degradation ladder's from-scratch pass
	// runs: fault injection is suppressed and the memoized analyzer is
	// bypassed, so a pinned decision always equals the clean
	// from-scratch oracle's.
	pinned bool
	// retriedAnalyses/panicsRecovered count pool-side recovery events
	// (timing-job retries after transient errors, recovered worker and
	// prefetch panics); integrate and the stream scheduler report deltas.
	retriedAnalyses atomic.Int64
	panicsRecovered atomic.Int64
}

// Option configures an MCC at construction time.
type Option func(*MCC)

// WithTimingWorkers bounds the worker pool that analyzes dirty resources
// during the timing acceptance test. 1 forces serial analysis; the default
// is runtime.GOMAXPROCS(0). Values below 1 clamp to 1 — the clamp rule for
// every MCC/stream sizing option is "non-positive means the serial/minimum
// configuration", never a silent fallback to the default.
func WithTimingWorkers(n int) Option {
	return func(m *MCC) {
		if n < 1 {
			n = 1
		}
		m.workers = n
	}
}

// defaultHistoryLimit bounds MCC.History when WithHistoryLimit is not
// given: generous enough that tests and scenario sweeps never observe a
// trim, small enough that a fleet server deciding changes for weeks does
// not leak a full timing table per proposal.
const defaultHistoryLimit = 8192

// WithHistoryLimit bounds MCC.History to the most recent n reports.
// Reports are appended newest-last as before; once the slice exceeds
// twice the limit, the newest n are copied down and the rest are dropped
// (amortized O(1) per proposal). Non-positive n disables the bound and
// keeps every report — the pre-PR-7 behavior. The default is
// defaultHistoryLimit (8192).
func WithHistoryLimit(n int) Option {
	return func(m *MCC) { m.historyLimit = n }
}

// WithFaultInjector installs a deterministic fault injector on the MCC's
// hook points ("stage.<name>" before every pipeline stage,
// "timing.worker" per pooled analysis, "stream.prefetch" per prefetch
// task, "journal.undo" on window rollback, plus the analyzer's
// "cpa.analyze"/"cpa.cache" hooks). Nil disables injection (the
// default); the hooks then cost one nil check.
func WithFaultInjector(inj *faultinject.Injector) Option {
	return func(m *MCC) { m.inject = inj }
}

// WithProposalDeadline bounds every proposal's wall-clock time. An
// expired proposal is rejected deterministically with a finding naming
// the stage the pipeline stopped at and is marked Degraded ("deadline")
// in its Report — it never hangs and never commits past the deadline.
// Non-positive durations are ignored (no deadline, the default).
func WithProposalDeadline(d time.Duration) Option {
	return func(m *MCC) {
		if d > 0 {
			m.proposalDeadline = d
		}
	}
}

// WithoutIncrementalTiming disables the memoized analyzer and the
// dirty-resource tracking, re-running the full busy-window analysis over
// every resource on every proposal. The pre-timing stages stay
// incremental; see WithoutIncremental for the full from-scratch baseline.
func WithoutIncrementalTiming() Option {
	return func(m *MCC) { m.incTiming = false }
}

// WithoutIncremental disables every incremental stage: validation,
// mapping, synthesis, and timing all run from scratch on every proposal.
// This is the seed behavior, kept as the measurable baseline for
// BenchmarkMCCThroughput.
func WithoutIncremental() Option {
	return func(m *MCC) {
		m.incTiming = false
		m.incPre = false
	}
}

// WithTimingOnlyIncremental keeps the memoized, dirty-tracked timing
// acceptance test but runs validation, mapping, and synthesis from
// scratch. This is the PR 1 engine, kept as the measurable intermediate
// between the serial baseline and full incremental integration.
func WithTimingOnlyIncremental() Option {
	return func(m *MCC) { m.incPre = false }
}

// WithAnalyzer makes the MCC share (and warm-start from) an existing
// memoizing timing analyzer instead of creating an empty one. Fleet
// sessions use this together with cpa.SaveCache/LoadCache to carry the
// busy-window memo table across process restarts, and the stream
// scheduler relies on the analyzer being shared between the prefetch
// pool and the decision pass. A nil analyzer is ignored.
func WithAnalyzer(a *cpa.Analyzer) Option {
	return func(m *MCC) {
		if a != nil {
			m.analyzer = a
		}
	}
}

// WithStage registers a custom acceptance stage (an additional viewpoint
// analysis); it runs after the built-in security stage and before the
// timing stage. Stages run in registration order. A rejection by a custom
// stage rolls back the candidate exactly like a built-in one.
func WithStage(s pipeline.Stage) Option {
	return func(m *MCC) { m.custom = append(m.custom, s) }
}

// New creates an MCC managing the given platform, with an empty deployed
// configuration. By default the whole acceptance pipeline is incremental
// (scoped validation, warm-started mapping, partial synthesis, memoized
// timing with dirty tracking) and dirty resources fan out over a
// GOMAXPROCS-sized worker pool; see WithoutIncremental,
// WithTimingOnlyIncremental, WithoutIncrementalTiming, WithTimingWorkers,
// and WithStage.
func New(p *model.Platform, opts ...Option) (*MCC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &MCC{
		platform:       p,
		deployed:       &model.FunctionalArchitecture{},
		observedWCETUS: make(map[string]int64),
		analyzer:       cpa.NewAnalyzer(),
		incTiming:      true,
		incPre:         true,
		historyLimit:   defaultHistoryLimit,
		workers:        runtime.GOMAXPROCS(0),
		deployedDigest: make(map[string]uint64),
		deployedTiming: make(map[string]TimingResult),
		procs:          procNames(p),
		procIdx:        procIndex(p),
	}
	for _, o := range opts {
		o(m)
	}
	m.pipe = pipeline.New(
		&validateStage{m},
		&mappingStage{m},
		&synthStage{m},
		&safetyStage{m},
		&securityStage{m},
		&timingStage{m},
		&monitorStage{m},
		&commitStage{m},
	).Insert(StageTiming, m.custom...)
	if m.inject != nil {
		m.analyzer.SetInjector(m.inject)
		m.pipe = m.pipe.Wrap(func(s pipeline.Stage) pipeline.Stage {
			return &faultStage{m: m, inner: s}
		})
	}
	return m, nil
}

// faultStage interposes the fault injector in front of a pipeline stage.
// Firing happens before the stage body runs, so an injected fault can
// never interrupt a commit mid-mutation. Pinned (degradation-ladder) and
// quarantined passes are exempt: the from-scratch fallback must be able
// to complete, which is what makes degraded decisions equal the clean
// oracle's.
type faultStage struct {
	m     *MCC
	inner pipeline.Stage
}

func (s *faultStage) Name() Stage { return s.inner.Name() }

func (s *faultStage) Run(ctx *pipeline.Context) error {
	if !s.m.pinned && !s.m.quarantined {
		if _, fired, err := s.m.inject.Fire(ctx.Done(), "stage."+string(s.inner.Name()), ""); fired && err != nil {
			ctx.Report.TransientFault = true
			return pipeline.Rejectf("%s: %v", s.inner.Name(), err)
		}
	}
	return s.inner.Run(ctx)
}

// Pipeline exposes the assembled stage sequence (for introspection and
// tooling; the stages themselves hold MCC state and must not be run
// outside integrate).
func (m *MCC) Pipeline() *pipeline.Pipeline { return m.pipe }

// TimingCacheStats exposes the analyzer's memoization counters.
func (m *MCC) TimingCacheStats() cpa.AnalyzerStats { return m.analyzer.Stats() }

// Analyzer returns the memoizing timing analyzer, e.g. to persist its
// memo table via cpa.SaveCache at the end of a session.
func (m *MCC) Analyzer() *cpa.Analyzer { return m.analyzer }

// Deployed returns the currently deployed functional architecture.
func (m *MCC) Deployed() *model.FunctionalArchitecture { return m.deployed }

// DeployedImpl returns the currently deployed implementation model (nil
// until the first successful integration). A keyed commit leaves the
// model's flat task and instance lists unmaterialized — the committed
// per-processor/per-function tables are the authoritative representation
// on the incremental path — so whole-model readers get them materialized
// here on demand, memoized until the next commit installs a new model.
// Messages and Connections are always present (aliased or rebuilt at
// commit time).
func (m *MCC) DeployedImpl() *model.ImplementationModel {
	if m.impl != nil && m.deployedSynth != nil {
		if m.impl.Tech != nil && m.impl.Tech.Instances == nil {
			m.impl.Tech.Instances = m.committedInstances()
		}
		if m.impl.Tasks == nil {
			m.impl.Tasks = m.committedTasks()
		}
	}
	return m.impl
}

// committedTasks materializes the committed flat task list from the
// synth cache's per-processor lists, in the m.procs assembly order every
// synthesis path uses. Non-nil even when empty, so the memoization in
// DeployedImpl sticks.
func (m *MCC) committedTasks() []model.Task {
	sc := m.deployedSynth
	total := 0
	for _, pn := range m.procs {
		total += len(sc.tasksOn[pn])
	}
	out := make([]model.Task, 0, total)
	for _, pn := range m.procs {
		out = append(out, sc.tasksOn[pn]...)
	}
	return out
}

// committedInstances materializes the committed flat instance list from
// the synth cache's per-function table, in the canonical (function,
// replica) order — each per-function list is replica-ascending, so
// concatenating them over the sorted names reproduces Instance.Less
// order exactly.
func (m *MCC) committedInstances() []model.Instance {
	sc := m.deployedSynth
	names := make([]string, 0, len(sc.instancesOf))
	total := 0
	for name, ins := range sc.instancesOf {
		names = append(names, name)
		total += len(ins)
	}
	sort.Strings(names)
	out := make([]model.Instance, 0, total)
	for _, name := range names {
		out = append(out, sc.instancesOf[name]...)
	}
	return out
}

// DeployedMonitors returns the monitor plan of the currently committed
// configuration (nil until the first successful integration), derived on
// demand from the committed per-resource CPA jobs — the MCC no longer
// stores a materialized plan. The returned slice is freshly allocated
// and owned by the caller. Rejected proposals never change the committed
// state, so the plan is unaffected by them — the rollback invariant the
// monitor tests pin.
func (m *MCC) DeployedMonitors() []MonitorSpec { return m.deployedRes.materializeMonitors() }

// ProposeUpdate attempts to integrate fn (a new function or a new version
// of a deployed one) into the running configuration.
func (m *MCC) ProposeUpdate(fn model.Function) *Report {
	return m.ProposeUpdateContext(context.Background(), fn)
}

// ProposeUpdateContext is ProposeUpdate bounded by ctx: cancellation or
// an expired deadline rejects the proposal deterministically (on top of
// the per-proposal deadline from WithProposalDeadline, if any).
func (m *MCC) ProposeUpdateContext(ctx context.Context, fn model.Function) *Report {
	return m.integrateChangeCtx(ctx, Change{Update: &fn})
}

// ProposeRemoval attempts to remove a function from the configuration.
func (m *MCC) ProposeRemoval(name string) *Report {
	return m.ProposeRemovalContext(context.Background(), name)
}

// ProposeRemovalContext is ProposeRemoval bounded by ctx.
func (m *MCC) ProposeRemovalContext(ctx context.Context, name string) *Report {
	return m.integrateChangeCtx(ctx, Change{Remove: name})
}

// ProposeArchitecture attempts to integrate a whole architecture at once
// (initial deployment).
func (m *MCC) ProposeArchitecture(fa *model.FunctionalArchitecture) *Report {
	return m.ProposeArchitectureContext(context.Background(), fa)
}

// ProposeArchitectureContext is ProposeArchitecture bounded by ctx.
func (m *MCC) ProposeArchitectureContext(ctx context.Context, fa *model.FunctionalArchitecture) *Report {
	return m.integrateCtx(ctx, fa.Clone())
}

// RecordObservedWCET feeds an observed execution-time maximum (µs) for a
// function back into the model domain. ReintegrateWithObservations uses
// these to evolve the timing contracts.
func (m *MCC) RecordObservedWCET(function string, observedUS int64) {
	if observedUS > m.observedWCETUS[function] {
		m.observedWCETUS[function] = observedUS
	}
}

// ReintegrateWithObservations re-runs the integration with contracts
// evolved to the observed WCET maxima where those exceed the modeled
// values. It returns the report; on acceptance the evolved configuration
// is deployed.
func (m *MCC) ReintegrateWithObservations() *Report {
	cand := m.deployed.Clone()
	for i := range cand.Functions {
		f := &cand.Functions[i]
		if obs := m.observedWCETUS[f.Name]; obs > f.Contract.RealTime.WCETUS {
			f.Contract.RealTime.WCETUS = obs
		}
	}
	return m.integrate(cand)
}

// integrate runs the staged acceptance-test pipeline on the candidate
// architecture. With incremental integration enabled, the pre-timing
// stages work from the diff against the deployed configuration. A
// warm-started attempt that any acceptance stage rejects is re-decided
// from scratch, so the warm-start heuristic can never cause a spurious
// rejection; an accepted warm-start placement is committed as-is — it
// passed every acceptance test, which is what the paper's integration
// process certifies, but it may be a different (equally valid) placement
// than the full best-fit would have produced, so on marginal workloads
// the two engines can in principle accept different configurations.
// TestRunMCCThroughput asserts decision equality over the E12 stream.
func (m *MCC) integrate(cand *model.FunctionalArchitecture) *Report {
	return m.integrateCtx(context.Background(), cand)
}

// integrateCtx is integrate bounded by gctx and hardened by the
// degradation ladder:
//
//   - WithProposalDeadline wraps gctx per proposal; expiry rejects with
//     a deterministic finding and marks the report Degraded ("deadline")
//     — never a rerun, never a hang.
//   - A rejection classified as a transient fault (injected analyzer
//     error surviving the bounded retries, recovered stage/worker
//     panic, detected cache corruption) quarantines the incremental
//     state and re-decides the proposal on the pinned from-scratch path
//     with fault injection suppressed, so the degraded verdict equals
//     the clean from-scratch oracle's; the report is marked Degraded
//     ("transient-fault"). The next accepted commit rebuilds every
//     cache wholesale (commitFull) and lifts the quarantine.
//   - While quarantined, every proposal decides on the pinned path and
//     is marked Degraded ("quarantined").
func (m *MCC) integrateCtx(gctx context.Context, cand *model.FunctionalArchitecture) *Report {
	return m.integrateDiff(gctx, cand, nil)
}

// trimHistory enforces the history bound: once History exceeds twice the
// limit, the newest limit reports are copied to the front and the tail is
// cleared so dropped reports become collectable. It is a no-op while a
// stream window is open — rollbackWindow truncates History to the
// window-start length, and a front-trim would shift that index — so the
// stream scheduler trims at beginWindow instead, before the index is
// captured.
func (m *MCC) trimHistory() {
	if m.historyLimit <= 0 || m.journal != nil || len(m.History) < 2*m.historyLimit {
		return
	}
	n := copy(m.History, m.History[len(m.History)-m.historyLimit:])
	clear(m.History[n:])
	m.History = m.History[:n]
}

// integrateDiff is integrateCtx with an optional precomputed diff: the
// change-driven fast path passes the DiffFromChange result so the warm
// pass never scans the architecture; nil keeps the ComputeDiff oracle.
// The cold re-decision and the pinned path ignore the diff by design —
// they run from scratch.
func (m *MCC) integrateDiff(gctx context.Context, cand *model.FunctionalArchitecture, diff *pipeline.Diff) *Report {
	rep := &Report{}
	defer func() {
		m.History = append(m.History, rep)
		m.trimHistory()
	}()

	pctx := gctx
	if m.proposalDeadline > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(gctx, m.proposalDeadline)
		defer cancel()
	}
	// Pool-side recovery counters report per-proposal deltas.
	retried0, panics0 := m.retriedAnalyses.Load(), m.panicsRecovered.Load()
	defer func() {
		rep.RetriedAnalyses += int(m.retriedAnalyses.Load() - retried0)
		rep.PanicsRecovered += int(m.panicsRecovered.Load() - panics0)
	}()

	if m.quarantined {
		m.runPinned(pctx, cand, rep)
		rep.Degraded = true
		rep.DegradedReasons = append(rep.DegradedReasons, "quarantined")
		m.markDeadline(pctx, rep)
		return rep
	}

	m.lastDeferred = nil
	ctx := m.newContext(pctx, cand, rep, m.incPre, diff)
	m.pipe.Run(ctx)

	if !rep.Accepted && pctx.Err() == nil && !rep.TransientFault &&
		ctx.WarmMapped && placementDependent(rep.RejectedAt) {
		// The rejected placement came from the warm-start heuristic; a
		// full best-fit might still find a feasible configuration.
		// Re-decide cold, keeping both passes' telemetry.
		m.lastDeferred = nil
		coldRep := &Report{Stages: rep.Stages, Passes: rep.Passes}
		coldCtx := m.newContext(pctx, cand, coldRep, false, nil)
		m.pipe.Run(coldCtx)
		*rep = *coldRep
	}

	if !rep.Accepted && pctx.Err() == nil && rep.TransientFault {
		// Degradation ladder: whether the fault hit the warm pass or the
		// cold retry, quarantine the suspect incremental state and
		// re-decide from scratch with injection suppressed.
		m.quarantined = true
		degRep := &Report{
			Stages: rep.Stages, Passes: rep.Passes,
			TransientFault: true,
		}
		m.runPinned(pctx, cand, degRep)
		*rep = *degRep
		rep.Degraded = true
		rep.DegradedReasons = append(rep.DegradedReasons, "transient-fault")
	}
	m.markDeadline(pctx, rep)
	return rep
}

// expiredReport resolves one change whose surrounding context is already
// cancelled or past its deadline without cloning or mutating any
// candidate state. The report mirrors what the pipeline's own pre-stage
// deadline check would produce — rejected before the first stage with
// the deterministic deadline finding — so short-circuited batch
// bisection and stream replay steps are indistinguishable from
// proposals that ran and expired immediately, minus the per-proposal
// setup cost.
func (m *MCC) expiredReport(gctx context.Context) *Report {
	rep := &Report{Passes: 1, RejectedAt: StageValidate, Degraded: true}
	if m.quarantined {
		rep.DegradedReasons = append(rep.DegradedReasons, "quarantined")
	}
	rep.DegradedReasons = append(rep.DegradedReasons, "deadline")
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("deadline: proposal deadline expired before stage %s (%v)", StageValidate, gctx.Err()))
	m.History = append(m.History, rep)
	m.trimHistory()
	return rep
}

// markDeadline marks a proposal stopped by its deadline as Degraded when
// the expiry surfaced inside a stage (as an analysis error) rather than
// at the pipeline's between-stage check, which marks it itself.
func (m *MCC) markDeadline(pctx context.Context, rep *Report) {
	if pctx.Err() != nil && !rep.Accepted && !slices.Contains(rep.DegradedReasons, "deadline") {
		rep.Degraded = true
		rep.DegradedReasons = append(rep.DegradedReasons, "deadline")
	}
}

// runPinned decides cand on the pinned from-scratch path: every stage
// from scratch, deferred checks off, fault injection suppressed, and the
// memoized analyzer bypassed — the decision cannot depend on any
// (possibly corrupt) incremental state and equals the clean oracle's.
// An accepted pinned pass commits from-scratch (commitFull), rebuilding
// every cache and lifting the quarantine.
func (m *MCC) runPinned(pctx context.Context, cand *model.FunctionalArchitecture, rep *Report) {
	savedDefer := m.deferChecks
	m.deferChecks = false
	m.pinned = true
	m.lastDeferred = nil
	ctx := m.newContext(pctx, cand, rep, false, nil)
	m.pipe.Run(ctx)
	m.pinned = false
	m.deferChecks = savedDefer
	m.lastDeferred = nil
}

// placementDependent reports whether a stage's verdict can depend on the
// instance placement, and hence on the warm-start heuristic. Validation
// and the security domain check decide on contracts and function/replica
// identities alone, so their rejections stand without a cold re-decision;
// everything else — including custom stages, whose inputs are unknown —
// is conservatively re-decided.
func placementDependent(s Stage) bool {
	return s != StageValidate && s != StageSecurity
}

// newContext assembles the pipeline context for one integration attempt.
// A non-nil diff short-circuits ComputeDiff (the change-driven fast
// path, where the candidate is the deployed architecture mutated in
// place — scanning it against itself would yield an empty diff anyway).
func (m *MCC) newContext(pctx context.Context, cand *model.FunctionalArchitecture, rep *Report, incremental bool, diff *pipeline.Diff) *pipeline.Context {
	ctx := &pipeline.Context{
		Platform:     m.platform,
		Candidate:    cand,
		Deployed:     m.deployed,
		DeployedImpl: m.impl,
		Report:       rep,
		Incremental:  incremental,
		DeferChecks:  m.deferChecks,
		Ctx:          pctx,
	}
	switch {
	case incremental && diff != nil:
		ctx.Diff = *diff
	case incremental:
		ctx.Diff = pipeline.ComputeDiff(m.deployed, cand)
	default:
		ctx.Diff = pipeline.FullDiff()
	}
	return ctx
}

func utilPPM(f *model.Function) int64 {
	rt := f.Contract.RealTime
	if !rt.HasTiming() {
		return 0
	}
	return rt.WCETUS * 1_000_000 / rt.PeriodUS
}

func scaleUtilPPM(ppm int64, speed float64) int64 {
	return int64(float64(ppm) / speed)
}

// StartupOrder resolves the run-time dependencies between the software
// components of an implementation model (after [3]: "resolve run-time
// dependencies between software components"): servers start before their
// clients so that every session can be established on first try. The
// result is a total, deterministic order; an error is returned when the
// session graph contains a cycle (mutually dependent components need a
// different startup protocol).
func StartupOrder(impl *model.ImplementationModel) ([]string, error) {
	// Build client -> server edges over instance IDs.
	ids := make([]string, 0, len(impl.Tech.Instances))
	for _, in := range impl.Tech.Instances {
		ids = append(ids, in.ID())
	}
	sort.Strings(ids)
	deps := make(map[string][]string)       // client -> servers
	indeg := make(map[string]int)           // number of unstarted servers
	dependents := make(map[string][]string) // server -> clients
	for _, id := range ids {
		indeg[id] = 0
	}
	for _, c := range impl.Connections {
		deps[c.Client] = append(deps[c.Client], c.Server)
		dependents[c.Server] = append(dependents[c.Server], c.Client)
		indeg[c.Client]++
	}
	// Kahn's algorithm with deterministic tie-break.
	var queue []string
	for _, id := range ids {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Strings(queue)
	var order []string
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		var next []string
		for _, cl := range dependents[id] {
			indeg[cl]--
			if indeg[cl] == 0 {
				next = append(next, cl)
			}
		}
		sort.Strings(next)
		queue = append(queue, next...)
	}
	if len(order) != len(ids) {
		var stuck []string
		for _, id := range ids {
			if indeg[id] > 0 {
				stuck = append(stuck, id)
			}
		}
		return nil, fmt.Errorf("mcc: cyclic session dependencies among %v", stuck)
	}
	return order, nil
}

func procNames(p *model.Platform) []string {
	out := make([]string, 0, len(p.Processors))
	for i := range p.Processors {
		out = append(out, p.Processors[i].Name)
	}
	sort.Strings(out)
	return out
}

func procIndex(p *model.Platform) map[string]int {
	out := make(map[string]int, len(p.Processors))
	for i := range p.Processors {
		out[p.Processors[i].Name] = i
	}
	return out
}
