package mcc

import (
	"fmt"

	"repro/internal/cpa"
	"repro/internal/model"
)

// FromScratchTables computes the whole-platform per-resource WCRT tables
// and the monitor plan of an implementation model from scratch — no
// memoization, no committed caches, no splicing. It is the reference the
// delta-report contract is held to: for every accepted change,
// Report.FullTiming()/FullMonitors() must equal what this oracle derives
// from the engine's deployed implementation model, whichever engine
// (serial, incremental, stream) decided the change. The tables are in
// deterministic resource order (loaded processors sorted by name, then
// loaded networks in platform order), matching the committed table.
func FromScratchTables(p *model.Platform, impl *model.ImplementationModel) ([]TimingResult, []MonitorSpec, error) {
	if impl == nil {
		return nil, nil, nil
	}
	m := &MCC{platform: p, procs: procNames(p), procIdx: procIndex(p)}
	var timing []TimingResult
	for _, pn := range m.procs {
		j, ok := m.buildProcJob(impl, pn)
		if !ok {
			continue
		}
		res, err := cpa.AnalyzeSPP(j.tasks)
		if err != nil {
			return nil, nil, fmt.Errorf("oracle: analysis of %s failed: %w", pn, err)
		}
		timing = append(timing, TimingResult{Resource: pn, Results: res})
	}
	for i := range p.Networks {
		j, ok := m.buildNetJob(impl, &p.Networks[i])
		if !ok {
			continue
		}
		res, err := cpa.AnalyzeSPNP(j.tasks)
		if err != nil {
			return nil, nil, fmt.Errorf("oracle: analysis of %s failed: %w", j.resource, err)
		}
		timing = append(timing, TimingResult{Resource: j.resource, Results: res})
	}
	return timing, m.planMonitors(impl), nil
}
