package mcc

import (
	"fmt"

	"repro/internal/mcc/pipeline"
	"repro/internal/thermal"
)

// StageThermal names the thermal-budget acceptance stage.
const StageThermal Stage = "thermal"

// ThermalBudgetStage is a custom acceptance viewpoint (registered via
// WithStage) demonstrating how additional analyses plug into the staged
// pipeline: it bounds each processor's steady-state junction temperature
// using the lumped RC model of package thermal. The power draw is modeled
// as a linear ramp between the idle and full-load envelope, scaled by the
// utilization of the synthesized task set, so an update that overloads a
// processor thermally is rejected before it ever reaches the vehicle —
// the same "change as acceptance test" discipline as safety, security,
// and timing (Section II.A; ambient temperature as a common-cause fault
// source is Section V).
type ThermalBudgetStage struct {
	// MaxC is the junction temperature budget per processor.
	MaxC float64
	// AmbientC is the worst-case ambient temperature assumed.
	AmbientC float64
	// IdleW and FullW bound the per-processor power draw at 0% and 100%
	// utilization.
	IdleW, FullW float64
	// RthCW is the junction-to-ambient thermal resistance.
	RthCW float64
}

// DefaultThermalBudget returns a stage with a representative automotive
// envelope: 85°C budget at 45°C worst-case ambient, 2..18W draw, 3°C/W.
func DefaultThermalBudget() ThermalBudgetStage {
	return ThermalBudgetStage{MaxC: 85, AmbientC: 45, IdleW: 2, FullW: 18, RthCW: 3}
}

// Name implements pipeline.Stage.
func (s ThermalBudgetStage) Name() Stage { return StageThermal }

// Run implements pipeline.Stage: it rejects the candidate when any
// processor's steady-state temperature under the synthesized load exceeds
// the budget. A misconfigured stage (non-positive thermal resistance)
// fails the acceptance test with a finding instead of panicking the
// controller mid-pipeline.
func (s ThermalBudgetStage) Run(ctx *pipeline.Context) error {
	if s.RthCW <= 0 {
		return pipeline.Rejectf("thermal: misconfigured stage: thermal resistance %v must be positive", s.RthCW)
	}
	// Per-processor utilization of the synthesized tasks (WCET is already
	// speed-scaled, so wcet/period is the busy fraction on that core).
	// ctx.Tasks(), not ctx.Impl.Tasks: the incremental path leaves the
	// flat list unmaterialized, and a direct read would see nothing.
	utilByProc := make(map[string]int64)
	for _, t := range ctx.Tasks() {
		if t.PeriodUS > 0 {
			utilByProc[t.Processor] += t.WCETUS * 1_000_000 / t.PeriodUS
		}
	}
	// Steady state of the lumped RC model: T = T_ambient + P * Rth (the
	// capacitance only shapes the transient, so any positive value does).
	rc := thermal.NewModel(s.RthCW, 1, s.AmbientC)
	rej := &pipeline.Reject{}
	hottest := 0.0
	for _, pn := range procNames(ctx.Platform) {
		util := float64(utilByProc[pn]) / 1_000_000
		power := s.IdleW + (s.FullW-s.IdleW)*util
		steady := rc.SteadyState(power)
		if steady > hottest {
			hottest = steady
		}
		if steady > s.MaxC {
			rej.Findings = append(rej.Findings,
				fmt.Sprintf("thermal: %s steady-state %.1fC exceeds budget %.1fC at %.0f%% utilization",
					pn, steady, s.MaxC, util*100))
		}
	}
	if len(rej.Findings) > 0 {
		return rej
	}
	ctx.Note("hottest steady state %.1fC (budget %.1fC)", hottest, s.MaxC)
	return nil
}
