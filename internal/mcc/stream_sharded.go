package mcc

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/safety"
	"repro/internal/security"
)

// This file implements the partition-sharded scheduling mode of the
// StreamScheduler (WithShardedWindows). The single-sequence scheduler
// serializes the whole platform behind one window pipeline: a conflict
// anywhere closes the global window, and every window close is a full
// barrier (prefetch, verify) before the next optimistic pass may run.
// On a fleet platform of disjoint CAN segments that serialization is
// artificial — changes confined to different segments never share a
// footprint.
//
// The sharded mode keeps the one property that cannot be traded away —
// decisions are made by a single mutator in exact stream order, so the
// optimistic pass IS the serial execution — and shards everything else:
//
//   - Window formation is per partition. Each shard accumulates the
//     footprints of its own open window; a conflict closes only that
//     shard's window (the conflicting change's footprint carries over as
//     the new window's head, never recomputed), and the other shards'
//     windows keep filling.
//   - Prefetch is eager and asynchronous. The moment the mutator
//     optimistically accepts a change, its deferred busy-window analyses
//     are handed to a persistent background pool and overlap the
//     optimistic passes of every later change. The single-sequence
//     scheduler only reaches this work at its window barrier.
//   - The rollback point is the epoch: one cacheJournal (beginWindow)
//     spanning every open shard window. Per-shard journals cannot be
//     sound here — placement is a global best-fit over shared processor
//     capacity, so a failed deferred verdict at stream position i makes
//     every later-positioned optimistic decision in ANY shard suspect,
//     and the committed load and cache state they built on is entangled
//     (pointer-swapped slices, overlapping journal keys when a change
//     places across its shard's boundary). The epoch barrier therefore
//     verifies every pending in stream order; one failure replays the
//     whole epoch serially (the analyzer memo stays warm, so the replay
//     re-pays only the cheap stages). The epoch is bounded
//     (shardEpochCap) so the blast radius — and the pending-verification
//     backlog — cannot grow with the stream.
//   - Each shard's committed-table updates are batched during barrier
//     verification and merged into one copy-on-write patch per shard
//     (mergeResUpdates), instead of one patch per verified proposal.
//
// Changes with a global footprint (removals, flow edits), changes whose
// committed replicas span partitions, and every change decided while the
// controller is quarantined drain the epoch — barrier, verify, commit or
// replay — and then decide alone through a serialized global window,
// exactly as the single-sequence scheduler would decide a window of one.

// shardState is one partition's open window formation state.
type shardState struct {
	// fps holds the footprints of the changes admitted to the shard's
	// open window.
	fps []footprint
	// members counts them (the window closes at the scheduler's window
	// bound, exactly like a single-sequence window).
	members int
}

// epochPend is one optimistically accepted change awaiting barrier
// verification, tagged with the shard whose window admitted it.
type epochPend struct {
	report *Report
	dt     *deferredChecks
	shard  int
}

// warmTimingJob warms the memoizing analyzer with one deferred job from
// the eager background pool. It mirrors runTimingJob's injection hook and
// transient-retry loop, but reads no mutator-owned state: runTimingJob
// consults m.pinned/m.quarantined, which the degradation ladder and a
// mid-epoch from-scratch commit may write while the pool runs. A deferred
// job only exists because a non-pinned incremental pass deferred it, so
// the memo path is always the right one here; errors are ignored — the
// barrier's verification re-reads every verdict on the mutator's
// goroutine and fails the epoch deterministically if one stands.
func (m *MCC) warmTimingJob(j timingJob) {
	for attempt := 0; ; attempt++ {
		err := func() error {
			if _, fired, ferr := m.inject.Fire(nil, "timing.worker", j.resource); fired && ferr != nil {
				return ferr
			}
			var aerr error
			if j.spnp {
				_, aerr = m.analyzer.AnalyzeSPNP(j.tasks)
			} else {
				_, aerr = m.analyzer.AnalyzeSPP(j.tasks)
			}
			return aerr
		}()
		if err == nil || !errors.Is(err, faultinject.ErrInjected) || attempt+1 >= maxAnalysisAttempts {
			return
		}
		m.retriedAnalyses.Add(1)
		time.Sleep(time.Duration(attempt+1) * 50 * time.Microsecond)
	}
}

// shardEpochCap bounds how many decisions one epoch may accumulate
// before a forced barrier: the epoch journal is the shared rollback
// point, so this is the worst-case serial-replay blast radius. It scales
// with the shard count — each shard deserves room for a full window —
// and is floored at one single-sequence window.
func (s *StreamScheduler) shardEpochCap(shards int) int {
	if shards < 1 {
		shards = 1
	}
	return s.window * shards
}

// runSharded decides the stream with per-partition window formation. One
// goroutine (the caller) runs every optimistic pass in stream order;
// only the deferred busy-window analyses run concurrently, on the
// background pool. Returns one report per change, exactly as serial
// proposals in stream order would.
func (s *StreamScheduler) runSharded(gctx context.Context, changes []Change, parts *platformParts) []*Report {
	m := s.m
	s.stats.Shards = parts.count

	// Persistent background prefetch pool, started on first use. The
	// tasks only touch concurrency-safe state: the memoizing analyzer
	// (single-flight), the atomic fault counters, and the pending's
	// atomic taint flag. The deferred from-scratch safety/security
	// checks are NOT run here — they read model state the mutator may
	// still touch — but at the barrier, after the pool has drained.
	var (
		wg      sync.WaitGroup
		tasks   chan func()
		started bool
	)
	startPool := func() {
		if started {
			return
		}
		started = true
		tasks = make(chan func(), 4*s.workers)
		for i := 0; i < s.workers; i++ {
			go func() {
				for t := range tasks {
					t()
				}
			}()
		}
	}
	defer func() {
		if started {
			close(tasks)
		}
	}()
	submit := func(fn func()) {
		startPool()
		wg.Add(1)
		tasks <- func() {
			defer wg.Done()
			fn()
		}
	}
	// guard converts a prefetch-task panic into a window taint, exactly
	// like the single-sequence prefetch pool.
	guard := func(dt *deferredChecks, fn func()) func() {
		return func() {
			defer func() {
				if r := recover(); r != nil {
					m.panicsRecovered.Add(1)
					dt.tainted.Store(true)
				}
			}()
			fn()
		}
	}

	shards := make([]shardState, parts.count)
	reports := make([]*Report, 0, len(changes))
	var (
		ej          *cacheJournal // open epoch journal (nil between epochs)
		pendings    []epochPend   // stream-ordered, awaiting the barrier
		seen        map[uint64]bool
		epochStart  int // index of the epoch's first change
		epochPasses int // genuine optimistic pipeline passes this epoch
	)

	openEpoch := func() {
		if ej != nil {
			return
		}
		ej = m.beginWindow()
		pendings = pendings[:0]
		seen = make(map[uint64]bool)
		epochStart = len(reports)
		epochPasses = 0
	}

	closeShard := func(sh int) {
		w := &shards[sh]
		if w.members == 0 {
			return
		}
		s.stats.Windows++
		w.fps = w.fps[:0]
		w.members = 0
	}

	// submitPending fans the freshly accepted change's deferred analyses
	// out to the background pool immediately (deduplicated per epoch by
	// task-set digest): they overlap every later optimistic pass and are
	// memo hits by the time the barrier verifies them.
	submitPending := func(p epochPend) {
		dt := p.dt
		for _, jb := range dt.jobs {
			if seen[analysisKey(jb)] {
				continue
			}
			seen[analysisKey(jb)] = true
			s.stats.Prefetched++
			job := jb
			submit(guard(dt, func() {
				if _, fired, err := m.inject.Fire(nil, "stream.prefetch", job.resource); fired && err != nil {
					dt.tainted.Store(true)
					return
				}
				m.warmTimingJob(job)
			}))
		}
	}

	// flushEpoch is the barrier: drain the pool, run the rare deferred
	// from-scratch safety/security checks, verify every pending in
	// stream order, then commit the epoch — or roll it back and replay
	// every epoch change serially.
	flushEpoch := func() {
		for sh := range shards {
			closeShard(sh)
		}
		if ej == nil {
			return
		}
		wg.Wait()
		var barrier []func()
		for _, p := range pendings {
			dt := p.dt
			if dt.tech != nil {
				barrier = append(barrier, guard(dt, func() {
					findings, checked := safety.CheckScoped(dt.tech, nil, nil)
					dt.safetyFailed = len(findings) > 0
					dt.safetyChecked = checked
				}))
			}
			if dt.impl != nil {
				barrier = append(barrier, guard(dt, func() {
					findings, checked := security.CheckDomainsScoped(dt.impl, nil, nil)
					dt.securityFailed = len(findings) > 0
					dt.securityChecked = checked
				}))
			}
		}
		retried0, panics0 := m.retriedAnalyses.Load(), m.panicsRecovered.Load()
		s.prefetch(barrier)

		verified := true
		batches := make([][]resUpdate, parts.count)
		for _, p := range pendings {
			if !s.verifyDeferredInto(p.report, p.dt, &batches[p.shard]) {
				verified = false
				break
			}
		}
		s.stats.RetriedAnalyses += int(m.retriedAnalyses.Load() - retried0)
		s.stats.PanicsRecovered += int(m.panicsRecovered.Load() - panics0)

		j := ej
		ej = nil
		if verified {
			// Merge each shard's batched updates into one copy-on-write
			// patch at the barrier; untouched shards cost nothing.
			for _, b := range batches {
				if len(b) > 0 {
					m.deployedRes = m.deployedRes.patch(mergeResUpdates(b))
				}
			}
			m.commitWindow()
			s.stats.Speculated += len(reports) - epochStart
			return
		}

		// A deferred verdict failed. Load coupling makes every
		// later-positioned optimistic decision suspect regardless of
		// shard, so the whole epoch rolls back and replays serially in
		// stream order — the authoritative order. Only the genuine
		// optimistic pipeline passes are discarded; deadline-expired
		// short-circuits never ran one.
		s.stats.Replays++
		s.stats.DiscardedPasses += epochPasses
		m.rollbackWindow(j)
		replay := changes[epochStart : epochStart+(len(reports)-epochStart)]
		reports = reports[:epochStart]
		for _, c := range replay {
			if gctx.Err() != nil {
				reports = append(reports, m.expiredReport(gctx))
				continue
			}
			reports = append(reports, m.proposeCtx(gctx, c))
		}
	}

	for i := 0; i < len(changes); {
		if gctx.Err() != nil {
			// Resolve the open epoch first — its optimistic commits must
			// be verified or replayed — then short-circuit the remaining
			// changes as deterministic deadline rejections.
			flushEpoch()
			for ; i < len(changes); i++ {
				reports = append(reports, m.expiredReport(gctx))
			}
			break
		}
		c := changes[i]
		fp := declaredFootprint(m.lookupDeployedFn, c)
		route := partGlobal
		if !fp.global && !m.quarantined {
			route = m.routeChange(c)
		}
		if route == partGlobal {
			// Global footprint, cross-partition replicas, or a
			// quarantined controller: drain every shard, then decide
			// alone through the serialized global window.
			flushEpoch()
			if gctx.Err() != nil {
				reports = append(reports, m.expiredReport(gctx))
				i++
				continue
			}
			s.stats.Windows++
			s.stats.GlobalWindows++
			reports = append(reports, m.proposeCtx(gctx, c))
			i++
			continue
		}

		w := &shards[route]
		conflict := false
		for _, prev := range w.fps {
			if prev.conflicts(fp) {
				conflict = true
				break
			}
		}
		if conflict {
			// Only this shard's window closes; fp (already computed) is
			// the fresh window's head — the per-shard footprint
			// carry-over.
			s.stats.Conflicts++
			closeShard(route)
		} else if w.members >= s.window {
			closeShard(route)
		}

		openEpoch()
		m.deferChecks = true
		rep := m.proposeCtx(gctx, c)
		m.deferChecks = false
		epochPasses += rep.Passes
		reports = append(reports, rep)
		if rep.Accepted && m.lastDeferred != nil {
			p := epochPend{rep, m.lastDeferred, route}
			pendings = append(pendings, p)
			submitPending(p)
		}
		m.lastDeferred = nil
		w.fps = append(w.fps, fp)
		w.members++
		i++
		if len(reports)-epochStart >= s.shardEpochCap(parts.count) {
			flushEpoch()
		}
	}
	flushEpoch()
	return reports
}
