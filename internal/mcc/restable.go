package mcc

import "repro/internal/mcc/pipeline"

// This file implements the chunked persistent committed-resource table
// behind the delta-report contract. PR 7's flat []committedRes slice made
// job construction diff-proportional, but every accepted commit still
// allocated and copied the whole slice (O(platform) memclr+copy per
// change — the dominant term of the E13 collapse at 2048 processors).
// The table keeps the same deterministic resource order (loaded
// processors sorted by name, then loaded networks in platform order) in
// fixed-size chunks behind a pointer spine: a keyed commit that touches
// k resources copies the spine and the ceil(k/chunk) affected chunks and
// shares every other chunk with the previous configuration — O(diff) per
// accepted change, with the old table (a window's rollback point, or a
// bound report's snapshot) fully intact.
//
// Reports bind a table pointer at commit time (Report.FullTiming /
// FullMonitors); materialization deep-copies on every call, so nothing a
// consumer obtains can alias chunk contents.

const (
	// resChunkShift sets the chunk size (64 entries): large enough that
	// the spine stays tiny (32 pointers at 2048 resources), small enough
	// that a one-resource patch copies ~6 KiB instead of the platform.
	resChunkShift = 6
	resChunkSize  = 1 << resChunkShift
	resChunkMask  = resChunkSize - 1
)

// resChunk is one fixed-size run of committed resources. Chunks are
// immutable once installed: patch copies before writing.
type resChunk [resChunkSize]committedRes

// resTable is the committed timing state in deterministic resource
// order. n is the entry count, procs the length of the processor prefix
// (entries [0,procs) are processors sorted by name, [procs,n) networks
// in platform order). The zero/nil table is valid and empty.
type resTable struct {
	chunks []*resChunk
	n      int
	procs  int
}

// resUpdate is one patch instruction: replace entry idx with cr.
type resUpdate struct {
	idx int
	cr  committedRes
}

// resDigestKey identifies one deferred analysis for the window heal map:
// two proposals of a window may defer the same resource with different
// task-set digests (disjoint function footprints sharing a processor),
// and each bound report snapshot must only be healed by its own digest's
// verdict.
type resDigestKey struct {
	res string
	dig uint64
}

// resTableFrom builds a table from a flat list. The list entries are
// copied into fresh chunks; the caller keeps ownership of list.
func resTableFrom(list []committedRes, procs int) *resTable {
	t := &resTable{
		chunks: make([]*resChunk, (len(list)+resChunkMask)>>resChunkShift),
		n:      len(list),
		procs:  procs,
	}
	for ci := range t.chunks {
		c := new(resChunk)
		copy(c[:], list[ci<<resChunkShift:])
		t.chunks[ci] = c
	}
	return t
}

// at returns entry i. The entry is shared, immutable storage — callers
// must not mutate it or retain the pointer across a patch.
func (t *resTable) at(i int) *committedRes {
	return &t.chunks[i>>resChunkShift][i&resChunkMask]
}

// patch returns a table with the given entries replaced: the spine and
// each affected chunk are copied, every untouched chunk is shared with
// the receiver. The receiver is unchanged (it may be a window rollback
// point or a bound report snapshot).
func (t *resTable) patch(updates []resUpdate) *resTable {
	if len(updates) == 0 {
		return t
	}
	nt := &resTable{
		chunks: make([]*resChunk, len(t.chunks)),
		n:      t.n,
		procs:  t.procs,
	}
	copy(nt.chunks, t.chunks)
	for _, u := range updates {
		ci := u.idx >> resChunkShift
		if nt.chunks[ci] == t.chunks[ci] {
			c := new(resChunk)
			*c = *t.chunks[ci]
			nt.chunks[ci] = c
		}
		nt.chunks[ci][u.idx&resChunkMask] = u.cr
	}
	return nt
}

// mergeResUpdates dedupes one shard's barrier patch batch by entry
// index, keeping the first update per index. The sharded scheduler
// verifies a whole epoch in stream order but applies each shard's table
// updates as one merged copy-on-write patch at the barrier; two verified
// proposals of the same shard can target the same entry only with the
// same digest (the probe in verifyDeferredInto admits only the entry's
// final committed digest), so dropped duplicates are identical values
// and the merge only trims the patch. The batch is deduped in place.
func mergeResUpdates(batch []resUpdate) []resUpdate {
	if len(batch) < 2 {
		return batch
	}
	seen := make(map[int]bool, len(batch))
	out := batch[:0]
	for _, u := range batch {
		if seen[u.idx] {
			continue
		}
		seen[u.idx] = true
		out = append(out, u)
	}
	return out
}

// find returns the index of the named resource, or -1. The processor
// prefix is sorted by name (binary search); the network suffix is short
// (platform networks, typically a handful) and scanned linearly.
func (t *resTable) find(resource string) int {
	if t == nil {
		return -1
	}
	lo, hi := 0, t.procs
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.at(mid).job.resource < resource {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < t.procs && t.at(lo).job.resource == resource {
		return lo
	}
	for i := t.procs; i < t.n; i++ {
		if t.at(i).job.resource == resource {
			return i
		}
	}
	return -1
}

// materializeTiming deep-copies the committed WCRT tables in resource
// order. An entry whose table is not yet known (an optimistically
// committed resource whose deferred analysis is still pending, or whose
// verdict lives only in the window heal map) is patched from heals by
// {resource, digest}; with no heal it is emitted with a nil Results
// slice — truthful, and visible to the parity oracle rather than papered
// over. Every entry, including healed ones, is freshly allocated.
func (t *resTable) materializeTiming(heals map[resDigestKey]TimingResult) []TimingResult {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]TimingResult, 0, t.n)
	for i := 0; i < t.n; i++ {
		cr := t.at(i)
		tr := cr.res
		if tr.Results == nil && heals != nil {
			if h, ok := heals[resDigestKey{cr.job.resource, cr.job.digest}]; ok {
				tr = h
			}
		}
		if tr.Resource == "" {
			tr.Resource = cr.job.resource
		}
		out = append(out, pipeline.CloneTimingResult(tr))
	}
	return out
}

// materializeMonitors derives the committed monitor plan from the
// committed CPA jobs: budget specs from processor tasks, enforced rate
// specs from network messages, sorted canonically. The CPA task sets
// carry exactly the contract parameters the monitors need (see
// jobMonitorSpecs), so the plan is element-for-element what planMonitors
// derives from the committed implementation model. One fresh allocation;
// the caller owns the result.
func (t *resTable) materializeMonitors() []MonitorSpec {
	if t == nil || t.n == 0 {
		return nil
	}
	total := 0
	for i := 0; i < t.n; i++ {
		total += len(t.at(i).job.tasks)
	}
	if total == 0 {
		return nil
	}
	out := make([]MonitorSpec, 0, total)
	for i := 0; i < t.n; i++ {
		j := t.at(i).job
		for _, ct := range j.tasks {
			if j.spnp {
				out = append(out, MonitorSpec{
					Kind: MonitorRate, Target: ct.Name,
					PeriodUS: ct.Event.PeriodUS, Enforce: true,
				})
			} else {
				out = append(out, MonitorSpec{
					Kind: MonitorBudget, Target: ct.Name,
					PeriodUS: ct.Event.PeriodUS, JitterUS: ct.Event.JitterUS, WCETUS: ct.WCETUS,
				})
			}
		}
	}
	sortMonitorSpecs(out)
	return out
}
