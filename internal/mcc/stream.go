package mcc

import (
	"context"
	"fmt"

	"repro/internal/mcc/pipeline"
	"repro/internal/model"
	"repro/internal/safety"
	"repro/internal/security"
)

// StreamScheduler drives a stream of change requests through the MCC at
// multi-core throughput while keeping every accept/reject decision
// identical to proposing the changes serially in stream order.
//
// The coupling that makes a change stream inherently sequential is shared
// platform capacity: every accepted change shifts processor loads, which
// shifts the best-fit placement — and therefore the task sets and timing
// verdicts — of every later change. The scheduler therefore does not
// reorder decisions. Instead it exploits the cost structure of the accept
// path: placement bookkeeping (validation, mapping, synthesis, monitor
// planning) is diff-proportional and cheap, while the busy-window timing
// analyses of dirty resources dominate. Proposals are grouped into
// windows of independent changes (pairwise-disjoint footprints computed
// from the function-level diff: touched function names and the services
// they provide/require; removals and flow edits conflict with everything
// and bound the window). Each window is processed in three phases:
//
//  1. Optimistic pass (serial, cheap): every change runs the full
//     incremental pipeline in stream order, but the expensive pure
//     verdict checks are deferred and the candidate commits
//     optimistically. Since the safety/security stages became
//     diff-scoped they usually decide inline here (the scoped verdict is
//     footprint-sized — deferring it would cost more than running it);
//     only their from-scratch fallback (cold passes, cold caches) and
//     the busy-window timing analyses of dirty resources are deferred
//     (the timing stage still constructs and digests the dirty task
//     sets).
//  2. Prefetch (concurrent): all deferred checks of the window fan out
//     over the bounded worker pool — the from-scratch safety/security
//     verdicts still pending, plus the dirty analyses deduplicated by
//     task-set digest through the shared memoizing analyzer. This is
//     where the cores are used: the window's dominant cost runs in
//     parallel.
//  3. Verification (serial, cheap): every deferred verdict is read back
//     in stream order. If all pass, the optimistic pass was exactly the
//     serial execution and the window is final. If any deferred check
//     fails (a safety or security finding, a missed deadline, an
//     analysis error), the window's optimistic commits are tainted: the
//     scheduler rolls the controller back to the window-start snapshot
//     and replays the window serially (the analyzer stays warm, so the
//     replay re-pays only the cheap stages).
//
// Rejections during the optimistic pass (contract violations, infeasible
// mappings, custom-stage findings) never commit anything and are decided
// against exactly the state the serial order would have produced, so
// they stand as-is. Custom stages registered via WithStage run inside
// the optimistic pass (their verdicts are not deferred); a stage with
// external side effects would observe optimistic (possibly replayed)
// state and should not be combined with the scheduler.
//
// The scheduler owns the MCC for the duration of Run: it is not safe to
// propose changes from other goroutines concurrently.
type StreamScheduler struct {
	m       *MCC
	workers int
	window  int
	sharded bool
	stats   StreamStats
}

// StreamOption configures a StreamScheduler.
type StreamOption func(*StreamScheduler)

// WithStreamWorkers bounds the pool that analyzes a window's deferred
// timing jobs concurrently. The default is the MCC's timing worker count
// (GOMAXPROCS unless overridden). Non-positive values clamp to 1 (the
// serial configuration) — never a silent fallback to the default.
func WithStreamWorkers(n int) StreamOption {
	return func(s *StreamScheduler) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// WithStreamWindow bounds how many independent changes one optimistic
// window may hold. Larger windows expose more concurrent analyses but
// widen the replay blast radius when a deferred verdict fails.
// Non-positive values clamp to 1 (windows of one change, i.e. serial
// proposals) — never a silent fallback to the default.
func WithStreamWindow(n int) StreamOption {
	return func(s *StreamScheduler) {
		if n < 1 {
			n = 1
		}
		s.window = n
	}
}

// WithShardedWindows makes the scheduler form one optimistic window
// sequence per platform partition (connected components of processors
// over the CAN segments that join them, full-coverage backbone networks
// excluded — see MCC.partitions) instead of a single global sequence.
// Decisions stay exactly serial-order: one mutator decides every change
// in stream order, but window formation, conflict barriers, and
// rollback blast radius become per-shard, and accepted changes' deferred
// busy-window analyses prefetch on a background pool that overlaps the
// optimistic passes of later changes — the multi-core win a single
// window sequence's per-window barrier forfeits. Cross-partition and
// global-footprint changes drain every shard and decide through a
// serialized global window. Platforms without disjoint segments (one
// partition or fewer) fall back to the single-sequence scheduler.
func WithShardedWindows() StreamOption {
	return func(s *StreamScheduler) { s.sharded = true }
}

// defaultStreamWindow bounds the optimistic window when the caller does
// not choose one.
const defaultStreamWindow = 16

// StreamStats reports how a Run spent its effort.
type StreamStats struct {
	// Windows is the number of optimistic windows formed.
	Windows int
	// Speculated counts changes decided by a window whose verification
	// passed (the optimistic pass was the serial execution).
	Speculated int
	// Prefetched counts deduplicated busy-window analyses fanned out
	// over the worker pool ahead of the decision point (the deferred
	// safety/security verdicts run on the same pool but are not counted
	// here).
	Prefetched int
	// Replays counts windows whose verification failed and that were
	// re-decided serially from the window-start snapshot.
	Replays int
	// DiscardedPasses counts the optimistic pipeline passes thrown away
	// by replays: the replay re-runs every change of the window, so the
	// true pipeline cost of a replayed window is its serial passes plus
	// these (their per-stage wall clock is dropped with them).
	DiscardedPasses int
	// Conflicts counts window barriers forced by a footprint conflict
	// (the conflicting change waits for the previous window to finalize
	// — it is serialized against it).
	Conflicts int
	// PanicsRecovered counts panics recovered on the prefetch pool and
	// during verification (each one taints its window, forcing the
	// serial replay). Panics recovered inside a proposal's own pipeline
	// run are counted on that proposal's Report instead.
	PanicsRecovered int
	// RetriedAnalyses counts transient-fault analysis retries spent in
	// the prefetch and verification phases (retries inside a proposal's
	// pipeline run land on its Report).
	RetriedAnalyses int
	// Shards is the number of platform partitions the scheduler formed
	// concurrent window sequences over. Zero when sharding is off, or
	// when the platform has no disjoint CAN segments and the scheduler
	// fell back to the single window sequence.
	Shards int
	// GlobalWindows counts the serialized global windows of a sharded
	// run: cross-partition and global-footprint changes drain every
	// shard and decide alone. Each is also counted in Windows.
	GlobalWindows int
}

// NewStreamScheduler returns a scheduler driving m. The MCC should run
// its default incremental engine; without the memoizing analyzer
// (WithoutIncremental) the prefetch phase has nowhere to store its
// results and the scheduler degrades to plain serial proposals.
func NewStreamScheduler(m *MCC, opts ...StreamOption) *StreamScheduler {
	s := &StreamScheduler{m: m, workers: m.workers, window: defaultStreamWindow}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns the effort counters of every Run so far.
func (s *StreamScheduler) Stats() StreamStats { return s.stats }

// Run decides every change in stream order and returns one report per
// change, exactly as serial ProposeUpdate/ProposeRemoval calls would.
func (s *StreamScheduler) Run(changes []Change) []*Report {
	return s.RunContext(context.Background(), changes)
}

// RunContext is Run bounded by ctx: every proposal (optimistic pass and
// serial replay alike) runs under it, composed with the MCC's
// per-proposal deadline when one is configured. An expired context
// resolves remaining proposals as deterministic deadline rejections —
// the stream never hangs on a stalled analysis.
func (s *StreamScheduler) RunContext(ctx context.Context, changes []Change) []*Report {
	if s.sharded && s.m.incTiming {
		if parts := s.m.partitions(); parts.count > 1 {
			return s.runSharded(ctx, changes, parts)
		}
	}
	reports := make([]*Report, 0, len(changes))
	var carry *footprint
	for lo := 0; lo < len(changes); {
		if ctx.Err() != nil {
			// Stop forming windows: the remaining changes resolve as
			// deterministic deadline rejections without footprint
			// computation or pipeline setup.
			for range changes[lo:] {
				reports = append(reports, s.m.expiredReport(ctx))
			}
			return reports
		}
		hi, next := s.windowEnd(changes, lo, carry)
		carry = next
		reports = append(reports, s.runWindow(ctx, changes[lo:hi])...)
		s.stats.Windows++
		lo = hi
	}
	return reports
}

// windowEnd extends the window starting at lo while the next change's
// declared footprint stays disjoint from every change already in it. A
// non-nil carry is the head change's footprint, computed when that change
// conflict-broke the previous window — carried over instead of being
// recomputed (the previous window's commits may since have shifted the
// deployed services behind it, but the footprint is a scheduling
// heuristic, never a correctness input). When the window closes on a
// conflict, the conflicting change's footprint is returned as the next
// window's carry.
func (s *StreamScheduler) windowEnd(changes []Change, lo int, carry *footprint) (int, *footprint) {
	head := carry
	if head == nil {
		fp := declaredFootprint(s.m.lookupDeployedFn, changes[lo])
		head = &fp
	}
	fps := []footprint{*head}
	hi := lo + 1
	for hi < len(changes) && hi-lo < s.window {
		fp := declaredFootprint(s.m.lookupDeployedFn, changes[hi])
		conflict := false
		for _, prev := range fps {
			if prev.conflicts(fp) {
				conflict = true
				break
			}
		}
		if conflict {
			s.stats.Conflicts++
			return hi, &fp
		}
		fps = append(fps, fp)
		hi++
	}
	return hi, nil
}

// runWindow decides one window of changes: optimistic pass, concurrent
// prefetch, verification, and — only if a deferred verdict fails — the
// serial replay from the window-start snapshot.
func (s *StreamScheduler) runWindow(gctx context.Context, changes []Change) []*Report {
	m := s.m
	if len(changes) == 1 || !m.incTiming || m.quarantined {
		// Nothing to overlap (no memo table to prefetch into, or the
		// controller is quarantined and every proposal takes the pinned
		// from-scratch path anyway): plain serial proposals.
		reports := make([]*Report, 0, len(changes))
		for _, c := range changes {
			if gctx.Err() != nil {
				reports = append(reports, m.expiredReport(gctx))
				continue
			}
			reports = append(reports, m.proposeCtx(gctx, c))
		}
		return reports
	}

	// Copy-on-write rollback point: window-start pointers now, undo
	// entries as the window's commits touch cache keys — cost follows the
	// window's footprint, not the platform size.
	j := m.beginWindow()
	type pend struct {
		report *Report
		dt     *deferredChecks
	}
	var pendings []pend
	reports := make([]*Report, 0, len(changes))
	// optimisticPasses counts the pipeline passes the optimistic phase
	// actually ran. Deadline-expired short-circuits never enter the
	// pipeline — their Passes field only mirrors the deterministic
	// deadline report — so they are excluded here, and the replay's
	// discard accounting below cannot inflate DiscardedPasses (and the
	// Evaluations the scenario layer derives from it).
	optimisticPasses := 0

	m.deferChecks = true
	for _, c := range changes {
		if gctx.Err() != nil {
			reports = append(reports, m.expiredReport(gctx))
			continue
		}
		rep := m.proposeCtx(gctx, c)
		reports = append(reports, rep)
		optimisticPasses += rep.Passes
		if rep.Accepted && m.lastDeferred != nil {
			pendings = append(pendings, pend{rep, m.lastDeferred})
		}
	}
	m.deferChecks = false
	m.lastDeferred = nil

	// Concurrent phase: run the window's deferred checks on the pool —
	// the from-scratch safety/security verdicts of proposals that could
	// not be decided by the inline diff-scoped checks (cold passes, cold
	// caches), plus the dirty busy-window analyses deduplicated by digest
	// (they land in the shared memo table, where verification reads them
	// back).
	var tasks []func()
	seen := make(map[uint64]bool)
	// guard isolates one prefetch task: a panic on the pool is recovered
	// and converted into a window taint (the verification pass then fails
	// the window and the serial replay re-decides it) — a fault on the
	// pool can degrade throughput, never crash the process or corrupt a
	// decision.
	guard := func(dt *deferredChecks, fn func()) func() {
		return func() {
			defer func() {
				if r := recover(); r != nil {
					m.panicsRecovered.Add(1)
					dt.tainted.Store(true)
				}
			}()
			fn()
		}
	}
	for _, p := range pendings {
		dt := p.dt
		// Safety/security inputs are recorded only when the stages could
		// not decide inline (no warm diff scope): the deferred check is
		// the from-scratch one. Scoped verdicts were already decided
		// during the optimistic pass and need no re-validation here.
		if dt.tech != nil {
			tasks = append(tasks, guard(dt, func() {
				findings, checked := safety.CheckScoped(dt.tech, nil, nil)
				dt.safetyFailed = len(findings) > 0
				dt.safetyChecked = checked
			}))
		}
		if dt.impl != nil {
			tasks = append(tasks, guard(dt, func() {
				findings, checked := security.CheckDomainsScoped(dt.impl, nil, nil)
				dt.securityFailed = len(findings) > 0
				dt.securityChecked = checked
			}))
		}
		for _, j := range dt.jobs {
			if !seen[analysisKey(j)] {
				seen[analysisKey(j)] = true
				s.stats.Prefetched++
				job := j
				tasks = append(tasks, guard(dt, func() {
					if _, fired, err := m.inject.Fire(nil, "stream.prefetch", job.resource); fired && err != nil {
						dt.tainted.Store(true)
						return
					}
					m.runTimingJob(nil, job) //nolint:errcheck // memo warming only
				}))
			}
		}
	}
	retried0, panics0 := m.retriedAnalyses.Load(), m.panicsRecovered.Load()
	s.prefetch(tasks)

	// Verification: read every deferred verdict back in stream order.
	verified := true
	for _, p := range pendings {
		if !s.verifyDeferred(p.report, p.dt) {
			verified = false
			break
		}
	}
	// Retries and recovered panics spent outside any proposal's own
	// pipeline run (prefetch pool, verification re-reads) are accounted
	// on the stream stats.
	s.stats.RetriedAnalyses += int(m.retriedAnalyses.Load() - retried0)
	s.stats.PanicsRecovered += int(m.panicsRecovered.Load() - panics0)
	if verified {
		m.commitWindow()
		s.stats.Speculated += len(changes)
		return reports
	}

	// A deferred verdict failed: the optimistic commits after (and
	// including) the failing proposal are tainted. Roll back to the
	// window-start state and replay serially — the authoritative order.
	// The discarded passes stay on the books so throughput accounting
	// never understates what the engine actually ran — but only the
	// genuine optimistic pipeline passes count; deadline-expired
	// short-circuits never ran one.
	s.stats.Replays++
	s.stats.DiscardedPasses += optimisticPasses
	m.rollbackWindow(j)
	reports = reports[:0]
	for _, c := range changes {
		// A cancelled or expired context must stop the serial replay
		// promptly: the remaining changes of the window resolve as
		// deadline rejections instead of paying a full pipeline setup
		// each just to rediscover the expiry.
		if gctx.Err() != nil {
			reports = append(reports, m.expiredReport(gctx))
			continue
		}
		reports = append(reports, m.proposeCtx(gctx, c))
	}
	return reports
}

// analysisKey distinguishes the SPP and SPNP analyses of identical task
// sets for prefetch deduplication. It is local to the dedup set — the
// analyzer derives its own cache keys — so a collision at worst skips
// one prefetch and shifts that analysis to the verification pass.
func analysisKey(j timingJob) uint64 {
	if j.spnp {
		return j.digest ^ 1
	}
	return j.digest
}

// prefetch runs the deferred check tasks on at most s.workers goroutines
// (the calling goroutine included). Task results land in each proposal's
// deferredChecks record and in the shared memo table; the barrier at the
// end makes them visible to the verification pass.
func (s *StreamScheduler) prefetch(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	workers := s.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	runParallel(len(tasks), workers, func(k int) { tasks[k]() })
}

// verifyDeferred re-validates one optimistically accepted proposal: the
// prefetched safety and security verdicts are inspected, and every
// deferred busy-window verdict is read back (a memo hit after prefetch)
// and checked exactly as the timing stage would have. On success the
// report's timing delta is filled with fresh copies of the deferred
// verdicts, the committed timing map is backfilled (journaled, so a
// later proposal's failed verdict rolls it back), the window heal map
// learns the verdicts for the table snapshots bound by this window's
// earlier commits, and the live committed table is patched copy-on-write
// so post-window snapshots are complete. On any failed check it reports
// false and leaves the caller to replay the window.
func (s *StreamScheduler) verifyDeferred(rep *Report, dt *deferredChecks) bool {
	return s.verifyDeferredInto(rep, dt, nil)
}

// verifyDeferredInto is verifyDeferred with an optional patch sink: a
// non-nil sink collects the committed-table updates instead of patching
// the live table per proposal. The sharded scheduler verifies a whole
// epoch in stream order but batches each shard's updates, merging them
// into one copy-on-write patch per shard at the barrier. Batching is
// sound because only the verdict whose digest matches the entry's final
// committed job is ever appended — an entry a later epoch commit
// re-dirtied fails the digest probe for the earlier verdict, exactly as
// it would have after an immediate patch.
func (s *StreamScheduler) verifyDeferredInto(rep *Report, dt *deferredChecks, sink *[]resUpdate) bool {
	// A tainted record means a prefetch task for this proposal hit a
	// fault (injected error or recovered panic): the optimistic decision
	// cannot be trusted, the window replays serially.
	if dt.tainted.Load() {
		return false
	}
	// Deferred from-scratch safety/security verdicts count toward the
	// report's check telemetry exactly as an inline full check would
	// (scoped inline checks already counted themselves during the
	// optimistic pass, and a replayed window rebuilds its reports).
	rep.SafetyChecks += dt.safetyChecked
	rep.SecurityChecks += dt.securityChecked
	if dt.safetyFailed || dt.securityFailed {
		return false
	}
	m := s.m
	if len(dt.jobs) == 0 {
		return true
	}
	delta := make([]TimingResult, 0, len(dt.jobs))
	var updates []resUpdate
	for _, job := range dt.jobs {
		res, err := m.runTimingJobSafe(nil, job)
		if err != nil {
			return false
		}
		for _, r := range res.Results {
			if !r.Schedulable {
				return false
			}
		}
		jset(m.journal.jTiming(), m.deployedTiming, job.resource, res)
		if m.windowHeals != nil {
			m.windowHeals[resDigestKey{job.resource, job.digest}] = res
		}
		if t := m.deployedRes; t != nil {
			if k := t.find(job.resource); k >= 0 {
				if cr := t.at(k); cr.job.digest == job.digest && cr.res.Results == nil {
					updates = append(updates, resUpdate{k, committedRes{job: cr.job, res: res}})
				}
			}
		}
		delta = append(delta, pipeline.CloneTimingResult(res))
	}
	rep.TimingDelta = delta
	if sink != nil {
		*sink = append(*sink, updates...)
	} else if len(updates) > 0 {
		// The patch leaves the window-start table (the journal's rollback
		// pointer) and every bound snapshot intact.
		m.deployedRes = m.deployedRes.patch(updates)
	}
	return true
}

// propose decides one change through the normal integration pipeline.
func (m *MCC) propose(c Change) *Report {
	return m.proposeCtx(context.Background(), c)
}

// proposeCtx is propose bounded by ctx (composed with the configured
// per-proposal deadline inside integrateCtx). It rides the change-driven
// fast path when the committed indexes are warm: the candidate is the
// deployed architecture mutated in place, the diff comes from the change
// object, and rejection (or window rollback) reverts the mutation.
func (m *MCC) proposeCtx(ctx context.Context, c Change) *Report {
	return m.integrateChangeCtx(ctx, c)
}

// footprint is the function-level resource footprint of one change,
// computed from the diff it would induce: the touched function names and
// the services they provide or require. Removals (and anything that
// would change the flow set) are global — they shift provider resolution
// and free capacity everywhere, so they conflict with every other
// change.
type footprint struct {
	names    map[string]bool
	services map[string]bool
	global   bool
}

// declaredFootprint derives a change's footprint against the currently
// deployed architecture, resolved through lookup (window formation
// happens before the window runs, so the deployed version of an updated
// function is the pre-window one; the footprint is a scheduling
// heuristic, never a correctness input).
func declaredFootprint(lookup func(string) *model.Function, c Change) footprint {
	if c.Update == nil {
		return footprint{global: true}
	}
	fp := footprint{
		names:    map[string]bool{c.Update.Name: true},
		services: make(map[string]bool),
	}
	for _, svc := range c.Update.Provides {
		fp.services[svc] = true
	}
	for _, svc := range c.Update.Requires {
		fp.services[svc] = true
	}
	if lookup != nil {
		if old := lookup(c.Update.Name); old != nil {
			for _, svc := range old.Provides {
				fp.services[svc] = true
			}
			for _, svc := range old.Requires {
				fp.services[svc] = true
			}
		}
	}
	return fp
}

// lookupDeployedFn resolves a deployed function by name: an O(1) index
// hit while the committed synthesis cache is warm, the linear
// architecture walk otherwise (cold or quarantined controllers).
func (m *MCC) lookupDeployedFn(name string) *model.Function {
	if m.deployedSynth != nil {
		return m.deployedSynth.fnByName[name]
	}
	return m.deployed.FunctionByName(name)
}

func (a footprint) conflicts(b footprint) bool {
	if a.global || b.global {
		return true
	}
	return intersects(a.names, b.names) || intersects(a.services, b.services)
}

func intersects(a, b map[string]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// String renders stream stats for telemetry rows. Every counter the
// struct carries is included — in particular the fault-spend telemetry
// (discarded passes, recovered panics, analysis retries) that chaos-tier
// rows report; silently dropping those under-reports what the engine
// actually ran.
func (st StreamStats) String() string {
	s := fmt.Sprintf("windows %d (speculated %d, replays %d, conflicts %d, prefetched %d, discarded %d, panics %d, retries %d)",
		st.Windows, st.Speculated, st.Replays, st.Conflicts, st.Prefetched,
		st.DiscardedPasses, st.PanicsRecovered, st.RetriedAnalyses)
	if st.Shards > 0 {
		s += fmt.Sprintf(" [shards %d, global %d]", st.Shards, st.GlobalWindows)
	}
	return s
}
