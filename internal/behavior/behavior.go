// Package behavior implements ability-guided behaviour execution
// (Section IV: "the ability level of the vehicle can then guide decision
// making and the vehicle's behavior execution"; Section V: the objective
// layer may "alter the driving objective of the system", e.g. "transition
// the system into a safe state, i.e. stop driving").
//
// The planner is a maneuver state machine driven by the root ability band
// of the vehicle's ability graph, with hysteresis so that noise in the
// ability level does not cause mode flapping:
//
//	Normal      — full performance: drive at the requested speed.
//	Derated     — degraded abilities: continue at a reduced speed cap.
//	SafeStop    — abilities below the driving floor: controlled stop in a
//	              safe place (the minimal-risk maneuver).
//	Standstill  — stopped; only recovers to Normal after abilities return
//	              to Full (no half-healthy restarts).
package behavior

import (
	"fmt"

	"repro/internal/skills"
)

// Maneuver is the active driving mode.
type Maneuver int

// Maneuvers in decreasing capability.
const (
	Normal Maneuver = iota
	Derated
	SafeStop
	Standstill
)

var maneuverNames = [...]string{"normal", "derated", "safe-stop", "standstill"}

func (m Maneuver) String() string {
	if m < 0 || int(m) >= len(maneuverNames) {
		return fmt.Sprintf("Maneuver(%d)", int(m))
	}
	return maneuverNames[m]
}

// Config parameterizes the planner.
type Config struct {
	// RequestedSpeed is the mission speed (m/s).
	RequestedSpeed float64
	// DeratedFraction scales the speed in Derated mode when no explicit
	// cap is installed (default 0.6).
	DeratedFraction float64
	// DownThreshold is the ability level below which Normal degrades to
	// Derated (default 0.8, the Full band edge).
	DownThreshold skills.Level
	// StopThreshold is the level below which driving stops (default 0.2,
	// the Unavailable band edge).
	StopThreshold skills.Level
	// UpThreshold is the level required to recover one step (default
	// 0.9 — hysteresis above DownThreshold).
	UpThreshold skills.Level
}

// DefaultConfig returns the standard thresholds.
func DefaultConfig(requestedSpeed float64) Config {
	return Config{
		RequestedSpeed:  requestedSpeed,
		DeratedFraction: 0.6,
		DownThreshold:   0.8,
		StopThreshold:   0.2,
		UpThreshold:     0.9,
	}
}

// Decision is the planner's output for one cycle.
type Decision struct {
	Maneuver Maneuver
	// TargetSpeed is the commanded speed (m/s); 0 for stop modes.
	TargetSpeed float64
	// Reason explains the choice.
	Reason string
}

// Planner is the ability-guided behaviour state machine.
type Planner struct {
	cfg Config
	cur Maneuver

	// speedCap, if > 0, is an externally installed cap (from the ability
	// layer's degradation tactic).
	speedCap float64

	// Transitions counts maneuver changes.
	Transitions int
}

// New creates a planner in Normal mode.
func New(cfg Config) *Planner {
	if cfg.DeratedFraction <= 0 {
		cfg.DeratedFraction = 0.6
	}
	if cfg.DownThreshold == 0 {
		cfg.DownThreshold = 0.8
	}
	if cfg.StopThreshold == 0 {
		cfg.StopThreshold = 0.2
	}
	if cfg.UpThreshold == 0 {
		cfg.UpThreshold = 0.9
	}
	return &Planner{cfg: cfg}
}

// Maneuver returns the active maneuver.
func (p *Planner) Maneuver() Maneuver { return p.cur }

// SetSpeedCap installs (or clears, with 0) an external speed cap.
func (p *Planner) SetSpeedCap(capMS float64) { p.speedCap = capMS }

// Step feeds the current root ability level and the vehicle speed; it
// returns the decision for this cycle.
func (p *Planner) Step(rootLevel skills.Level, vehicleSpeed float64) Decision {
	prev := p.cur
	switch p.cur {
	case Normal:
		switch {
		case rootLevel < p.cfg.StopThreshold:
			p.cur = SafeStop
		case rootLevel < p.cfg.DownThreshold:
			p.cur = Derated
		}
	case Derated:
		switch {
		case rootLevel < p.cfg.StopThreshold:
			p.cur = SafeStop
		case rootLevel >= p.cfg.UpThreshold:
			p.cur = Normal
		}
	case SafeStop:
		if vehicleSpeed <= 0.1 {
			p.cur = Standstill
		}
		// No recovery mid-maneuver: a safe stop, once begun, completes
		// (consequence-awareness: aborting a minimal-risk maneuver on a
		// flickering ability signal is worse than finishing it).
	case Standstill:
		if rootLevel >= p.cfg.UpThreshold {
			p.cur = Normal
		}
	}
	if p.cur != prev {
		p.Transitions++
	}
	return p.decision(rootLevel)
}

func (p *Planner) decision(rootLevel skills.Level) Decision {
	switch p.cur {
	case Normal:
		speed := p.cfg.RequestedSpeed
		if p.speedCap > 0 && p.speedCap < speed {
			speed = p.speedCap
		}
		return Decision{Maneuver: Normal, TargetSpeed: speed, Reason: "abilities nominal"}
	case Derated:
		speed := p.cfg.RequestedSpeed * p.cfg.DeratedFraction
		if p.speedCap > 0 && p.speedCap < speed {
			speed = p.speedCap
		}
		return Decision{
			Maneuver: Derated, TargetSpeed: speed,
			Reason: fmt.Sprintf("root ability %.2f below %.2f: derated operation", float64(rootLevel), float64(p.cfg.DownThreshold)),
		}
	case SafeStop:
		return Decision{
			Maneuver: SafeStop, TargetSpeed: 0,
			Reason: fmt.Sprintf("root ability %.2f below driving floor %.2f: minimal-risk maneuver", float64(rootLevel), float64(p.cfg.StopThreshold)),
		}
	default:
		return Decision{Maneuver: Standstill, TargetSpeed: 0, Reason: "stopped; waiting for full ability recovery"}
	}
}
