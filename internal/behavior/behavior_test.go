package behavior

import (
	"testing"
	"testing/quick"

	"repro/internal/skills"
)

func TestNormalOperation(t *testing.T) {
	p := New(DefaultConfig(25))
	d := p.Step(1.0, 25)
	if d.Maneuver != Normal || d.TargetSpeed != 25 {
		t.Fatalf("decision = %+v", d)
	}
	if p.Transitions != 0 {
		t.Fatalf("transitions = %d", p.Transitions)
	}
}

func TestDegradeToDerated(t *testing.T) {
	p := New(DefaultConfig(25))
	d := p.Step(0.5, 25)
	if d.Maneuver != Derated {
		t.Fatalf("maneuver = %v", d.Maneuver)
	}
	if d.TargetSpeed != 15 { // 25 * 0.6
		t.Fatalf("target = %v", d.TargetSpeed)
	}
	if d.Reason == "" {
		t.Fatal("no reason")
	}
}

func TestHysteresisOnRecovery(t *testing.T) {
	p := New(DefaultConfig(25))
	p.Step(0.5, 25) // -> Derated
	// 0.85 is back in the Full band but below the Up threshold: stay.
	if d := p.Step(0.85, 20); d.Maneuver != Derated {
		t.Fatalf("recovered too eagerly: %v", d.Maneuver)
	}
	if d := p.Step(0.95, 20); d.Maneuver != Normal {
		t.Fatalf("no recovery at 0.95: %v", d.Maneuver)
	}
}

func TestSafeStopCompletesEvenIfAbilityFlickers(t *testing.T) {
	p := New(DefaultConfig(25))
	d := p.Step(0.1, 25) // -> SafeStop
	if d.Maneuver != SafeStop || d.TargetSpeed != 0 {
		t.Fatalf("decision = %+v", d)
	}
	// Ability flickers back up mid-maneuver: the stop continues.
	if d := p.Step(1.0, 15); d.Maneuver != SafeStop {
		t.Fatalf("aborted safe stop: %v", d.Maneuver)
	}
	// Vehicle reaches standstill.
	if d := p.Step(1.0, 0); d.Maneuver != Standstill {
		t.Fatalf("no standstill: %v", d.Maneuver)
	}
	// From standstill, full recovery resumes driving.
	if d := p.Step(1.0, 0); d.Maneuver != Normal {
		t.Fatalf("no restart: %v", d.Maneuver)
	}
}

func TestStandstillRequiresFullRecovery(t *testing.T) {
	p := New(DefaultConfig(25))
	p.Step(0.1, 25)
	p.Step(0.1, 0) // -> Standstill
	if d := p.Step(0.5, 0); d.Maneuver != Standstill {
		t.Fatalf("half-healthy restart: %v", d.Maneuver)
	}
}

func TestDeratedToSafeStop(t *testing.T) {
	p := New(DefaultConfig(25))
	p.Step(0.5, 25) // Derated
	if d := p.Step(0.05, 25); d.Maneuver != SafeStop {
		t.Fatalf("no escalation to safe stop: %v", d.Maneuver)
	}
}

func TestExternalSpeedCap(t *testing.T) {
	p := New(DefaultConfig(25))
	p.SetSpeedCap(18)
	if d := p.Step(1.0, 25); d.TargetSpeed != 18 {
		t.Fatalf("cap ignored in Normal: %v", d.TargetSpeed)
	}
	// In Derated the tighter of cap and derated speed wins.
	p.SetSpeedCap(10)
	if d := p.Step(0.5, 20); d.TargetSpeed != 10 {
		t.Fatalf("cap ignored in Derated: %v", d.TargetSpeed)
	}
	p.SetSpeedCap(0)
	if d := p.Step(0.5, 20); d.TargetSpeed != 15 {
		t.Fatalf("cleared cap: %v", d.TargetSpeed)
	}
}

func TestManeuverString(t *testing.T) {
	if Normal.String() != "normal" || SafeStop.String() != "safe-stop" {
		t.Fatal("names")
	}
}

// Property: the target speed is always 0 in stop modes and never exceeds
// the requested speed.
func TestPropSpeedBounds(t *testing.T) {
	f := func(levels []uint8) bool {
		p := New(DefaultConfig(30))
		speed := 30.0
		for _, l := range levels {
			d := p.Step(skills.Level(float64(l%101)/100), speed)
			if d.TargetSpeed > 30 {
				return false
			}
			if (d.Maneuver == SafeStop || d.Maneuver == Standstill) && d.TargetSpeed != 0 {
				return false
			}
			speed = d.TargetSpeed // idealized tracking
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: hysteresis prevents flapping — alternating levels just around
// the Down threshold cause at most one transition.
func TestPropNoFlapping(t *testing.T) {
	p := New(DefaultConfig(30))
	for i := 0; i < 100; i++ {
		lvl := skills.Level(0.79)
		if i%2 == 1 {
			lvl = 0.84 // above Down (0.8) but below Up (0.9)
		}
		p.Step(lvl, 30)
	}
	if p.Transitions > 1 {
		t.Fatalf("flapping: %d transitions", p.Transitions)
	}
}
