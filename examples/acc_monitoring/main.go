// acc_monitoring: the full E4 closed loop — vehicle dynamics, a radar-like
// object sensor with fault injection, the ACC controller with performance
// self-assessment, plausibility cross-checks, and the ability graph that
// fuses all health signals and applies graceful degradation.
//
// This example runs three fault campaigns and prints the resulting
// detection/degradation behaviour side by side.
//
// Run with: go run ./examples/acc_monitoring
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/sensors"
)

func main() {
	log.SetFlags(0)
	campaigns := []struct {
		name string
		kind sensors.FaultKind
		mag  float64
	}{
		{"noise inflation x6", sensors.FaultNoisy, 6},
		{"70% dropout", sensors.FaultDropout, 0.7},
		{"frozen sensor", sensors.FaultFreeze, 0},
	}
	for _, c := range campaigns {
		cfg := scenario.DefaultACCConfig()
		cfg.Fault = c.kind
		cfg.FaultMagnitude = c.mag
		res, err := scenario.RunACC(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", c.name)
		for _, row := range res.Rows() {
			fmt.Printf("  %s\n", row)
		}
		fmt.Println()
	}
	fmt.Println("Note how every fault is detected through a different path:")
	fmt.Println("  noise   -> sensor self-assessment (quality estimate)")
	fmt.Println("  dropout -> drop-rate indicator")
	fmt.Println("  freeze  -> plausibility cross-check (self-assessment alone is blind)")
}
