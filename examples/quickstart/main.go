// Quickstart: build the paper's ACC skill graph, instantiate it as an
// ability graph, attach a degradation tactic, and watch performance
// levels propagate when a sensor degrades.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/skills"
)

func main() {
	log.SetFlags(0)

	// 1. The development-time model: the ACC skill graph of Section IV.
	graph, err := skills.BuildACC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ACC skill graph: %d nodes, main skill %q\n", len(graph.Nodes()), graph.Roots()[0])
	for _, path := range graph.PathsToGround(skills.ACCDriving)[:3] {
		fmt.Printf("  dependency chain: %v\n", path)
	}

	// 2. The run-time instantiation: an ability graph with performance
	// levels, plus a graceful-degradation tactic on the main skill.
	ag, err := skills.Instantiate(graph)
	if err != nil {
		log.Fatal(err)
	}
	ag.OnChange(func(c skills.LevelChange) {
		fmt.Printf("  [monitor] %-28s %v -> %v (level %.2f)\n", c.Node, c.Old, c.New, float64(c.Level))
	})
	if err := ag.RegisterTactic(&skills.Tactic{
		Name:    "limit-speed",
		Skill:   skills.ACCDriving,
		Trigger: 0.8,
		Apply: func(*skills.AbilityGraph) {
			fmt.Println("  [tactic] ACC degraded: installing reduced speed limit")
		},
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Monitors report degrading environment sensors (e.g. heavy rain).
	fmt.Println("\nsensor quality drops to 0.5:")
	if err := ag.SetHealth(skills.SrcEnvSensors, 0.5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroot ability %q now at %.2f (%v)\n",
		skills.ACCDriving, float64(ag.Level(skills.ACCDriving)), ag.BandOf(skills.ACCDriving))
	fmt.Printf("bottleneck chain: %v\n", ag.WeakestChain(skills.ACCDriving))

	// 4. Recovery.
	fmt.Println("\nsensor recovers:")
	if err := ag.SetHealth(skills.SrcEnvSensors, 1.0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroot ability back at %.2f (%v)\n",
		float64(ag.Level(skills.ACCDriving)), ag.BandOf(skills.ACCDriving))
}
