// degraded_driving: ability-guided behaviour execution. The ability graph
// monitors the vehicle's skills; the behaviour planner (objective layer)
// turns the root ability level into maneuvers — normal driving, derated
// operation, a minimal-risk safe stop, standstill — with hysteresis and
// consequence-awareness (a safe stop, once begun, completes even if the
// ability signal flickers back).
//
// Run with: go run ./examples/degraded_driving
package main

import (
	"fmt"
	"log"

	"repro/internal/behavior"
	"repro/internal/skills"
	"repro/internal/vehicle"
)

func main() {
	log.SetFlags(0)
	ag, err := skills.InstantiateACC()
	if err != nil {
		log.Fatal(err)
	}
	veh := vehicle.New(vehicle.DefaultParams())
	veh.SetSpeed(25)
	planner := behavior.New(behavior.DefaultConfig(25))

	// A day in the life: sensor health over time (per 2s step).
	profile := []struct {
		t      int
		health skills.Level
		note   string
	}{
		{0, 1.0, "clear conditions"},
		{10, 0.6, "heavy rain: sensor quality drops"},
		{20, 0.45, "rain worsens"},
		{30, 0.9, "rain passes"},
		{40, 0.1, "sensor hardware fault!"},
		{60, 1.0, "sensor replaced/recovered"},
	}

	const dt = 2.0
	idx := 0
	for step := 0; step <= 35; step++ {
		tS := step * 2
		for idx < len(profile) && profile[idx].t <= tS {
			if err := ag.SetHealth(skills.SrcEnvSensors, profile[idx].health); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%3ds  %s (sensor health %.2f)\n", tS, profile[idx].note, float64(profile[idx].health))
			idx++
		}
		root := ag.Level(skills.ACCDriving)
		d := planner.Step(root, veh.Speed())

		// Idealized speed tracking toward the target.
		diff := d.TargetSpeed - veh.Speed()
		accel := diff / dt
		if accel > 2 {
			accel = 2
		}
		if accel < -veh.MaxDeceleration() {
			accel = -veh.MaxDeceleration()
		}
		veh.Step(accel, dt)

		if step%2 == 0 {
			fmt.Printf("t=%3ds  ability %.2f  maneuver %-10s  target %4.1f m/s  actual %4.1f m/s\n",
				tS, float64(root), d.Maneuver, d.TargetSpeed, veh.Speed())
		}
	}
	fmt.Printf("\nmaneuver transitions: %d\n", planner.Transitions)
}
