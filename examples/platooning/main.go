// platooning: the fog scenario of Section V. A vehicle whose sensors are
// not fog-rated cannot keep a useful speed alone; joining a platoon led by
// a better-equipped vehicle lets it proceed — but agreement on the common
// velocity must tolerate untrustworthy members.
//
// Run with: go run ./examples/platooning
package main

import (
	"fmt"
	"log"

	"repro/internal/platoon"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	// --- Part 1: why join a platoon in fog at all.
	pol := platoon.FogPolicy{
		VisibilityM:     60,   // dense fog
		SensorRangeFrac: 0.15, // camera-only perception, not fog-rated
		ReactionS:       1.0,
		MaxDecel:        6,
	}
	solo := pol.SoloSpeed()
	inPlatoon := pol.PlatoonSpeed(1.0, 25)
	fmt.Printf("dense fog (60 m visibility), own sensors at 15%%:\n")
	fmt.Printf("  solo safe speed:     %5.1f m/s (%4.1f km/h) — effectively parked\n", solo, solo*3.6)
	fmt.Printf("  in platoon (25 m gap behind fog-rated lead): %5.1f m/s (%4.1f km/h)\n\n", inPlatoon, inPlatoon*3.6)

	// --- Part 2: agreeing on the common velocity with a liar on board.
	rng := sim.NewRNG(42)
	p := platoon.New()
	for i := 0; i < 5; i++ {
		r := rng.Split(uint64(i))
		if _, err := p.Join(fmt.Sprintf("vehicle%d", i), func(int) float64 {
			return 21 + r.Uniform(-0.4, 0.4)
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := p.Join("compromised", func(round int) float64 {
		return 120 // tries to drag the platoon to an unsafe speed
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("velocity agreement rounds (1 byzantine member among 6):")
	for round := 1; round <= 6; round++ {
		res, err := p.AgreeVelocity(1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  round %d: agreed %.2f m/s, deviants %v, trust(compromised)=%.2f\n",
			round, res.Agreed, res.Deviants, p.Trust("compromised"))
	}
	bad := p.Untrusted(0.5)
	fmt.Printf("\nejection candidates (trust < 0.5): %v\n", bad)
	for _, id := range bad {
		if err := p.Leave(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("platoon members after ejection: %v\n", p.Members())
}
