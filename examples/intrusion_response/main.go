// intrusion_response: the Section V worked example, end to end. A security
// flaw in the rear-braking software component is detected by communication
// monitoring; the example contrasts the four response strategies —
// safety-layer-only, objective-layer stop, coordinated cross-layer, and
// uncoordinated (conflicting) — and prints why the cross-layer response is
// the only one that keeps the driving objective alive safely.
//
// Run with: go run ./examples/intrusion_response
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	results, err := scenario.RunIntrusionComparison()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Rear-brake component compromised at 25 m/s (90 km/h).")
	fmt.Println("The IDS flags the component from its communication behaviour;")
	fmt.Println("containment cuts rear braking. Each strategy then decides:")
	fmt.Println()
	for _, r := range results {
		fmt.Printf("--- %s ---\n", r.Config.Strategy)
		for _, row := range r.Rows()[2:] {
			fmt.Printf("  %s\n", row)
		}
		switch r.Config.Strategy {
		case scenario.StrategySafetyOnly:
			fmt.Println("  -> no standby for the rear circuit: only the fail-safe stop remains")
		case scenario.StrategyObjectiveStop:
			fmt.Println("  -> safe, but the mission is sacrificed unnecessarily")
		case scenario.StrategyCrossLayer:
			fmt.Println("  -> ability layer reassesses: speed cap + drivetrain braking keep driving safe")
		case scenario.StrategyUncoordinated:
			fmt.Println("  -> layers decide independently and contradict each other (the paper's warning)")
		}
		fmt.Println()
	}
}
