// update_integration: the CCC in-field update workflow of Section II. An
// MCC manages a deployed vehicle configuration; updates proposed over the
// air pass through the full integration pipeline — contract validation,
// platform mapping, implementation synthesis, safety/security/timing
// acceptance tests — and are committed only if every test passes.
//
// Run with: go run ./examples/update_integration
package main

import (
	"fmt"
	"log"

	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	m, err := mcc.New(scenario.ReferencePlatform())
	if err != nil {
		log.Fatal(err)
	}

	// Initial deployment: the base driving stack.
	base := &model.FunctionalArchitecture{
		Functions: []model.Function{
			{
				Name:     "perception",
				Provides: []string{"objects"},
				Contract: model.Contract{
					Safety:    model.ASILB,
					RealTime:  model.RealTimeContract{PeriodUS: 50000, WCETUS: 9000},
					Resources: model.ResourceContract{RAMKiB: 2048},
					Domain:    "drive",
				},
			},
			{
				Name:     "acc",
				Requires: []string{"objects"},
				Provides: []string{"accel_cmd"},
				Contract: model.Contract{
					Safety:    model.ASILC,
					RealTime:  model.RealTimeContract{PeriodUS: 20000, WCETUS: 1500},
					Resources: model.ResourceContract{RAMKiB: 256},
					Domain:    "drive",
				},
			},
			{
				Name:     "brake-ctl",
				Requires: []string{"accel_cmd"},
				Replicas: 2,
				Contract: model.Contract{
					Safety:          model.ASILD,
					RealTime:        model.RealTimeContract{PeriodUS: 10000, WCETUS: 800},
					Resources:       model.ResourceContract{RAMKiB: 128},
					Domain:          "drive",
					FailOperational: true,
				},
			},
		},
		Flows: []model.Flow{
			{From: "perception", To: "acc", Service: "objects", MsgBytes: 64, PeriodUS: 50000},
			{From: "acc", To: "brake-ctl", Service: "accel_cmd", MsgBytes: 8, PeriodUS: 20000},
		},
	}
	report(m, "initial deployment", m.ProposeArchitecture(base))

	// Update 1: a new comfort function — feasible.
	report(m, "add park-assist (QM)", m.ProposeUpdate(model.Function{
		Name: "park-assist",
		Contract: model.Contract{
			Safety:    model.QM,
			RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 12000},
			Resources: model.ResourceContract{RAMKiB: 1024},
		},
	}))

	// Update 2: an ACC version with a fatter WCET — still schedulable.
	upd := *base.FunctionByName("acc")
	upd.Version = 2
	upd.Contract.RealTime.WCETUS = 3000
	report(m, "update acc to v2 (WCET 1.5ms -> 3ms)", m.ProposeUpdate(upd))

	// Update 3: a malicious/broken update — telematics wants the
	// actuation service across domains without a permission.
	report(m, "add telematics requiring accel_cmd cross-domain", m.ProposeUpdate(model.Function{
		Name:     "telematics",
		Requires: []string{"accel_cmd"},
		Contract: model.Contract{
			Safety:    model.QM,
			RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 500},
			Resources: model.ResourceContract{RAMKiB: 128},
			Domain:    "connectivity",
		},
	}))

	// Update 4: run-time observations evolve the ACC contract.
	m.RecordObservedWCET("acc", 3600)
	report(m, "reintegrate with observed WCET 3.6ms (model refinement)", m.ReintegrateWithObservations())

	fmt.Printf("integration history: %d proposals processed\n", len(m.History))
}

func report(m *mcc.MCC, what string, rep *mcc.Report) {
	verdict := "ACCEPTED"
	if !rep.Accepted {
		verdict = fmt.Sprintf("REJECTED at %s", rep.RejectedAt)
	}
	fmt.Printf("=== %s: %s\n", what, verdict)
	for _, f := range rep.Findings {
		fmt.Printf("      %s\n", f)
	}
	if rep.Accepted && rep.Impl != nil {
		// Whole-platform task counts come from the committed model;
		// rep.Impl.Tasks is unmaterialized on the incremental path.
		fmt.Printf("      tasks=%d messages=%d monitors=%d\n",
			len(m.DeployedImpl().Tasks), len(rep.Impl.Messages), len(rep.FullMonitors()))
	}
	fmt.Println()
}
